package calib

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGroupByValidation(t *testing.T) {
	if _, err := GroupBy([]float64{0.5}, []int{1}, []int{0, 1}, 2); err == nil {
		t.Error("expected mismatch error for groups length")
	}
	if _, err := GroupBy([]float64{0.5}, []int{1}, []int{3}, 2); err == nil {
		t.Error("expected out-of-range group error")
	}
	if _, err := GroupBy([]float64{0.5}, []int{1}, []int{-1}, 2); err == nil {
		t.Error("expected negative group error")
	}
	if _, err := GroupBy(nil, nil, nil, -1); err == nil {
		t.Error("expected negative group count error")
	}
}

func TestGroupByAggregation(t *testing.T) {
	scores := []float64{0.2, 0.8, 0.6, 0.4}
	labels := []int{0, 1, 1, 0}
	groups := []int{0, 0, 1, 1}
	stats, err := GroupBy(scores, labels, groups, 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Count != 2 || !almostEqual(stats[0].SumScore, 1.0, 1e-12) || !almostEqual(stats[0].SumLabel, 1, 1e-12) {
		t.Errorf("group 0 = %+v", stats[0])
	}
	if stats[1].Count != 2 || !almostEqual(stats[1].MeanScore(), 0.5, 1e-12) || !almostEqual(stats[1].PosRate(), 0.5, 1e-12) {
		t.Errorf("group 1 = %+v", stats[1])
	}
	if stats[2].Count != 0 || stats[2].MiscalAbs() != 0 {
		t.Errorf("empty group 2 = %+v", stats[2])
	}
}

func TestENCESingleGroupEqualsOverall(t *testing.T) {
	// With one neighborhood, ENCE must equal the overall |e−o|.
	scores := []float64{0.9, 0.2, 0.7, 0.1}
	labels := []int{1, 0, 0, 0}
	groups := []int{0, 0, 0, 0}
	e, err := ENCE(scores, labels, groups, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := MiscalAbs(scores, labels); !almostEqual(e, want, 1e-12) {
		t.Errorf("ENCE = %v, want overall miscal %v", e, want)
	}
}

func TestENCEKnownValue(t *testing.T) {
	// Two groups of 2: group 0 has |e−o| = |0.5 − 1| = 0.5,
	// group 1 has |e−o| = |0.5 − 0| = 0.5 → ENCE = 0.5.
	scores := []float64{0.4, 0.6, 0.4, 0.6}
	labels := []int{1, 1, 0, 0}
	groups := []int{0, 0, 1, 1}
	e, err := ENCE(scores, labels, groups, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(e, 0.5, 1e-12) {
		t.Errorf("ENCE = %v, want 0.5", e)
	}
}

func TestENCEEmpty(t *testing.T) {
	e, err := ENCE(nil, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Errorf("ENCE of empty = %v, want 0", e)
	}
	if got := ENCEFromStats([]SuffStats{{}, {}}); got != 0 {
		t.Errorf("ENCE of empty stats = %v, want 0", got)
	}
}

// randomInstance generates a consistent random (scores, labels, groups)
// triple for property testing.
func randomInstance(rng *rand.Rand, maxN, maxGroups int) ([]float64, []int, []int, int) {
	n := rng.Intn(maxN) + 1
	g := rng.Intn(maxGroups) + 1
	scores := make([]float64, n)
	labels := make([]int, n)
	groups := make([]int, n)
	for i := 0; i < n; i++ {
		scores[i] = rng.Float64()
		labels[i] = rng.Intn(2)
		groups[i] = rng.Intn(g)
	}
	return scores, labels, groups, g
}

func TestTheorem1ENCELowerBound(t *testing.T) {
	// Theorem 1: for any complete non-overlapping partitioning, ENCE is
	// lower-bounded by the overall model miscalibration |e(h) − o(h)|.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		scores, labels, groups, g := randomInstance(rng, 120, 12)
		e, err := ENCE(scores, labels, groups, g)
		if err != nil {
			return false
		}
		return e+1e-12 >= MiscalAbs(scores, labels)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTheorem2RefinementMonotonicity(t *testing.T) {
	// Theorem 2: if N2 is a sub-partitioning of N1 then
	// ENCE(N1) <= ENCE(N2). We build N2 by splitting each N1 group into
	// two random subgroups.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		scores, labels, coarse, g := randomInstance(rng, 120, 8)
		fine := make([]int, len(coarse))
		for i, c := range coarse {
			fine[i] = 2*c + rng.Intn(2) // split group c into 2c and 2c+1
		}
		e1, err := ENCE(scores, labels, coarse, g)
		if err != nil {
			return false
		}
		e2, err := ENCE(scores, labels, fine, 2*g)
		if err != nil {
			return false
		}
		return e1 <= e2+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestENCERange(t *testing.T) {
	// ENCE is a convex combination of per-group |e−o| values, each in
	// [0,1], so ENCE ∈ [0,1].
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		scores, labels, groups, g := randomInstance(rng, 60, 6)
		e, err := ENCE(scores, labels, groups, g)
		if err != nil {
			return false
		}
		return e >= 0 && e <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGroupStatsSignedDeviationConsistency(t *testing.T) {
	// |Σ(s−y)| == count · |e−o| — the identity that lets the fair split
	// use unnormalized sums (see DESIGN.md §2).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		scores, labels, groups, g := randomInstance(rng, 60, 4)
		stats, err := GroupBy(scores, labels, groups, g)
		if err != nil {
			return false
		}
		for _, st := range stats {
			lhs := math.Abs(st.SignedDeviation())
			rhs := float64(st.Count) * st.MiscalAbs()
			if math.Abs(lhs-rhs) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTopNeighborhoods(t *testing.T) {
	scores := []float64{0.9, 0.9, 0.9, 0.1, 0.1, 0.5}
	labels := []int{1, 0, 0, 0, 1, 1}
	groups := []int{0, 0, 0, 1, 1, 2}
	reports, err := TopNeighborhoods(scores, labels, groups, 3, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	if reports[0].Group != 0 || reports[0].Count != 3 {
		t.Errorf("top neighborhood = %+v, want group 0 count 3", reports[0])
	}
	if reports[1].Group != 1 || reports[1].Count != 2 {
		t.Errorf("second neighborhood = %+v, want group 1 count 2", reports[1])
	}
	// Group 0: e = 0.9, o = 1/3 → ratio = 2.7, miscal ≈ 0.5667.
	if !almostEqual(reports[0].Ratio, 2.7, 1e-9) {
		t.Errorf("ratio = %v, want 2.7", reports[0].Ratio)
	}
	if !almostEqual(reports[0].Miscal, 0.9-1.0/3, 1e-9) {
		t.Errorf("miscal = %v", reports[0].Miscal)
	}
}

func TestTopNeighborhoodsKLargerThanGroups(t *testing.T) {
	reports, err := TopNeighborhoods([]float64{0.5}, []int{1}, []int{0}, 1, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("got %d reports, want 1", len(reports))
	}
}

func TestTopNeighborhoodsNaNRatio(t *testing.T) {
	// All-negative neighborhood: ratio undefined (NaN), miscal well-defined.
	reports, err := TopNeighborhoods([]float64{0.5, 0.5}, []int{0, 0}, []int{0, 0}, 1, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(reports[0].Ratio) {
		t.Errorf("ratio = %v, want NaN", reports[0].Ratio)
	}
	if !almostEqual(reports[0].Miscal, 0.5, 1e-12) {
		t.Errorf("miscal = %v, want 0.5", reports[0].Miscal)
	}
}
