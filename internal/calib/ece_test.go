package calib

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestECEValidation(t *testing.T) {
	if _, err := ECE([]float64{0.5}, []int{1, 0}, 10); err == nil {
		t.Error("expected length mismatch error")
	}
	if _, err := ECE([]float64{0.5}, []int{1}, 0); err == nil {
		t.Error("expected bin count error")
	}
	if _, err := ECE(nil, nil, 5); err != nil {
		t.Errorf("empty input should be fine: %v", err)
	}
}

func TestECEPerfectlyCalibratedBins(t *testing.T) {
	// Construct data where each bin's mean score equals its positive
	// rate exactly: ECE must be 0.
	var scores []float64
	var labels []int
	// Bin [0.6,0.8) with 5 instances at 0.7 and 3.5... must use integer
	// positives: 10 instances at 0.7 with 7 positive.
	for i := 0; i < 10; i++ {
		scores = append(scores, 0.7)
		if i < 7 {
			labels = append(labels, 1)
		} else {
			labels = append(labels, 0)
		}
	}
	got, err := ECE(scores, labels, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0, 1e-12) {
		t.Errorf("ECE = %v, want 0", got)
	}
}

func TestECEKnownValue(t *testing.T) {
	// Two bins with 2 instances each over bins=2.
	// Bin 0: scores 0.2, 0.4 (mean 0.3), labels 1,1 (rate 1.0) -> |1-0.3| = 0.7, weight 0.5
	// Bin 1: scores 0.6, 0.8 (mean 0.7), labels 0,0 (rate 0.0) -> 0.7, weight 0.5
	scores := []float64{0.2, 0.4, 0.6, 0.8}
	labels := []int{1, 1, 0, 0}
	got, err := ECE(scores, labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0.7, 1e-12) {
		t.Errorf("ECE = %v, want 0.7", got)
	}
}

func TestECEScoreOneGoesToLastBin(t *testing.T) {
	got, err := ECE([]float64{1.0}, []int{1}, 15)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0, 1e-12) {
		t.Errorf("ECE = %v, want 0 (score 1, label 1)", got)
	}
}

func TestECEBounds(t *testing.T) {
	// Property: 0 <= ECE <= 1 for scores in [0,1].
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(n%50) + 1
		scores := make([]float64, m)
		labels := make([]int, m)
		for i := range scores {
			scores[i] = rng.Float64()
			labels[i] = rng.Intn(2)
		}
		e, err := ECE(scores, labels, 15)
		if err != nil {
			return false
		}
		return e >= 0 && e <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestECELowerBoundsOverallMiscal(t *testing.T) {
	// Property: binned ECE >= |e - o| overall (triangle inequality over
	// bins, same structure as Theorem 1 over neighborhoods).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(80) + 1
		scores := make([]float64, m)
		labels := make([]int, m)
		for i := range scores {
			scores[i] = rng.Float64()
			labels[i] = rng.Intn(2)
		}
		e, err := ECE(scores, labels, 10)
		if err != nil {
			return false
		}
		return e+1e-12 >= MiscalAbs(scores, labels)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestReliability(t *testing.T) {
	scores := []float64{0.05, 0.95, 0.95}
	labels := []int{0, 1, 0}
	bins, err := Reliability(scores, labels, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 10 {
		t.Fatalf("got %d bins, want 10", len(bins))
	}
	if bins[0].Count != 1 || !almostEqual(bins[0].MeanScore, 0.05, 1e-12) {
		t.Errorf("bin 0 = %+v", bins[0])
	}
	if bins[9].Count != 2 || !almostEqual(bins[9].PosRate, 0.5, 1e-12) {
		t.Errorf("bin 9 = %+v", bins[9])
	}
	total := 0
	for _, b := range bins {
		total += b.Count
		if b.Hi <= b.Lo {
			t.Errorf("bin has non-positive width: %+v", b)
		}
	}
	if total != len(scores) {
		t.Errorf("bins cover %d instances, want %d", total, len(scores))
	}
}

func TestReliabilityValidation(t *testing.T) {
	if _, err := Reliability([]float64{0.1}, []int{}, 5); err == nil {
		t.Error("expected mismatch error")
	}
	if _, err := Reliability(nil, nil, -1); err == nil {
		t.Error("expected bin count error")
	}
}

func TestBinOfClamping(t *testing.T) {
	if got := binOf(-0.1, 10); got != 0 {
		t.Errorf("binOf(-0.1) = %d, want 0", got)
	}
	if got := binOf(1.0+1e-15, 10); got != 9 {
		t.Errorf("binOf(1+eps) = %d, want 9", got)
	}
	if got := binOf(math.Nextafter(1, 0), 10); got != 9 {
		t.Errorf("binOf(just under 1) = %d, want 9", got)
	}
}
