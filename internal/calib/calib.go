// Package calib implements the calibration metrics of the paper:
// model-level calibration (ratio and absolute forms, §2.2), Expected
// Calibration Error over score bins (ECE, Appendix A.1), and Expected
// Neighborhood Calibration Error over spatial groups (ENCE,
// Definition 3).
//
// Conventions follow the paper: e(·) is the mean predicted confidence
// score, o(·) the true fraction of positive instances. A perfectly
// calibrated model has e/o = 1 and |e−o| = 0. The absolute form is
// preferred throughout because it is robust to empty and all-negative
// groups (no division by zero).
package calib

import (
	"errors"
	"fmt"
	"math"
)

// ErrLengthMismatch is returned when scores and labels (or groups)
// have different lengths.
var ErrLengthMismatch = errors.New("calib: scores, labels and groups must have equal length")

// checkPair validates the common (scores, labels) precondition.
func checkPair(scores []float64, labels []int) error {
	if len(scores) != len(labels) {
		return fmt.Errorf("%w: %d scores vs %d labels", ErrLengthMismatch, len(scores), len(labels))
	}
	return nil
}

// MeanScore returns e(h): the mean confidence score, or 0 for empty
// input.
func MeanScore(scores []float64) float64 {
	if len(scores) == 0 {
		return 0
	}
	var sum float64
	for _, s := range scores {
		sum += s
	}
	return sum / float64(len(scores))
}

// PositiveRate returns o(h): the fraction of positive labels, or 0
// for empty input. Any nonzero label counts as positive.
func PositiveRate(labels []int) float64 {
	if len(labels) == 0 {
		return 0
	}
	pos := 0
	for _, y := range labels {
		if y != 0 {
			pos++
		}
	}
	return float64(pos) / float64(len(labels))
}

// Ratio returns the calibration ratio e(h)/o(h) of Eq. 2. When the
// positive rate is zero the ratio is undefined; the second return
// value is false in that case. A well-calibrated model has ratio 1.
func Ratio(scores []float64, labels []int) (ratio float64, ok bool) {
	o := PositiveRate(labels)
	if o == 0 {
		return 0, false
	}
	return MeanScore(scores) / o, true
}

// MiscalAbs returns the absolute miscalibration |e(h) − o(h)| (§2.2,
// the form used for all split decisions and evaluations in the paper).
// Empty input yields 0.
func MiscalAbs(scores []float64, labels []int) float64 {
	return math.Abs(MeanScore(scores) - PositiveRate(labels))
}

// SignedDeviation returns the unnormalized signed deviation
// Σ (s_u − y_u) over all instances. Dividing by the instance count
// gives e − o; the unnormalized form is what the fair split objective
// (Eq. 9) consumes.
func SignedDeviation(scores []float64, labels []int) float64 {
	var sum float64
	for i, s := range scores {
		sum += s - float64(label01(labels[i]))
	}
	return sum
}

func label01(y int) int {
	if y != 0 {
		return 1
	}
	return 0
}
