package calib

import (
	"math"
	"testing"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanScore(t *testing.T) {
	tests := []struct {
		name   string
		scores []float64
		want   float64
	}{
		{"empty", nil, 0},
		{"single", []float64{0.7}, 0.7},
		{"several", []float64{0.2, 0.4, 0.6}, 0.4},
		{"zeros", []float64{0, 0}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := MeanScore(tt.scores); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("MeanScore = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPositiveRate(t *testing.T) {
	tests := []struct {
		name   string
		labels []int
		want   float64
	}{
		{"empty", nil, 0},
		{"all positive", []int{1, 1, 1}, 1},
		{"none", []int{0, 0}, 0},
		{"mixed", []int{1, 0, 1, 0}, 0.5},
		{"nonzero counts as positive", []int{2, -1, 0}, 2.0 / 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := PositiveRate(tt.labels); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("PositiveRate = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRatioPaperExample(t *testing.T) {
	// The paper's Figure 1b example: Σ scores = 5.2 over 11 people with
	// 7 positives gives calibration ratio ≈ 0.742 (Eq. 2).
	scores := []float64{0.2, 0.3, 0.4, 0.4, 0.5, 0.5, 0.5, 0.6, 0.6, 0.6, 0.6}
	var sum float64
	for _, s := range scores {
		sum += s
	}
	if !almostEqual(sum, 5.2, 1e-9) {
		t.Fatalf("test fixture broken: Σ scores = %v, want 5.2", sum)
	}
	labels := []int{1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0}
	r, ok := Ratio(scores, labels)
	if !ok {
		t.Fatal("Ratio reported undefined")
	}
	if !almostEqual(r, 5.2/7.0, 1e-9) {
		t.Errorf("Ratio = %v, want %v", r, 5.2/7.0)
	}
}

func TestRatioUndefined(t *testing.T) {
	if _, ok := Ratio([]float64{0.5}, []int{0}); ok {
		t.Error("Ratio with zero positive rate should be undefined")
	}
}

func TestMiscalAbs(t *testing.T) {
	tests := []struct {
		name   string
		scores []float64
		labels []int
		want   float64
	}{
		{"perfect", []float64{0.5, 0.5}, []int{1, 0}, 0},
		{"overconfident", []float64{0.9, 0.9}, []int{1, 0}, 0.4},
		{"underconfident", []float64{0.1, 0.1}, []int{1, 1}, 0.9},
		{"empty", nil, nil, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := MiscalAbs(tt.scores, tt.labels); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("MiscalAbs = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSignedDeviation(t *testing.T) {
	scores := []float64{0.8, 0.3, 0.5}
	labels := []int{1, 0, 1}
	// (0.8-1) + (0.3-0) + (0.5-1) = -0.4
	if got := SignedDeviation(scores, labels); !almostEqual(got, -0.4, 1e-12) {
		t.Errorf("SignedDeviation = %v, want -0.4", got)
	}
	// Consistency: SignedDeviation / n == e - o.
	n := float64(len(scores))
	if got := SignedDeviation(scores, labels) / n; !almostEqual(got, MeanScore(scores)-PositiveRate(labels), 1e-12) {
		t.Errorf("deviation/n = %v inconsistent with e-o", got)
	}
}
