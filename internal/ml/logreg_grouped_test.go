package ml

import (
	"math"
	"math/rand"
	"testing"
)

// randGrouped builds a random factorized design plus labels/weights.
func randGrouped(rng *rand.Rand, n, bcols, numG, scols int) (*GroupedDesign, []int, []float64) {
	d := &GroupedDesign{
		Base:   make([][]float64, n),
		Group:  make([]int, n),
		Shared: make([][]float64, numG),
	}
	for r := range d.Shared {
		row := make([]float64, scols)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		d.Shared[r] = row
	}
	y := make([]int, n)
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, bcols)
		for j := range row {
			row[j] = rng.NormFloat64() * 3
		}
		d.Base[i] = row
		d.Group[i] = rng.Intn(numG)
		if rng.Float64() < 0.5 {
			y[i] = 1
		}
		w[i] = 0.25 + rng.Float64()
	}
	return d, y, w
}

// materialize returns the dense matrix of a grouped design.
func materialize(d *GroupedDesign) [][]float64 {
	X := make([][]float64, d.Rows())
	for i := range X {
		X[i] = d.Row(i)
	}
	return X
}

func sameModel(t *testing.T, a, b *LogReg, label string) {
	t.Helper()
	if a.bias != b.bias {
		t.Fatalf("%s: bias %v vs %v", label, a.bias, b.bias)
	}
	for j := range a.weights {
		if a.weights[j] != b.weights[j] {
			t.Fatalf("%s: weight[%d] %v vs %v (diff %g)", label, j, a.weights[j], b.weights[j], a.weights[j]-b.weights[j])
		}
	}
	for j := range a.std.Mean {
		if a.std.Mean[j] != b.std.Mean[j] || a.std.Scale[j] != b.std.Scale[j] {
			t.Fatalf("%s: standardizer col %d differs", label, j)
		}
	}
}

// The optimized grouped fit must be bit-identical to the retained
// naive reference for any worker count, weighted or not.
func TestFitGroupedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, tc := range []struct{ n, bcols, numG, scols, workers int }{
		{50, 3, 4, 6, 1},
		{400, 5, 16, 18, 1},
		{1200, 5, 32, 34, 4},
		{300, 0, 8, 10, 3}, // no base columns
		{257, 4, 1, 3, 2},  // single group
	} {
		d, y, w := randGrouped(rng, tc.n, tc.bcols, tc.numG, tc.scols)
		for _, weights := range [][]float64{nil, w} {
			opt := NewLogReg()
			opt.Epochs = 40
			opt.Workers = tc.workers
			if err := opt.FitGrouped(d, y, weights); err != nil {
				t.Fatalf("FitGrouped: %v", err)
			}
			ref := NewLogReg()
			ref.Epochs = 40
			if err := ref.FitGroupedReference(d, y, weights); err != nil {
				t.Fatalf("FitGroupedReference: %v", err)
			}
			sameModel(t, opt, ref, "grouped fit")

			po, err := opt.PredictProbaGrouped(d)
			if err != nil {
				t.Fatal(err)
			}
			pr, err := ref.PredictProbaGroupedReference(d)
			if err != nil {
				t.Fatal(err)
			}
			for i := range po {
				if po[i] != pr[i] {
					t.Fatalf("grouped predict row %d: %v vs %v", i, po[i], pr[i])
				}
			}
		}
	}
}

// The rewritten dense Fit/PredictProba must be bit-identical to the
// retained pre-overhaul implementation for any worker count.
func TestFitMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, workers := range []int{0, 1, 4} {
		d, y, w := randGrouped(rng, 700, 6, 9, 5)
		X := materialize(d)
		for _, weights := range [][]float64{nil, w} {
			opt := NewLogReg()
			opt.Epochs = 35
			opt.Workers = workers
			if err := opt.Fit(X, y, weights); err != nil {
				t.Fatalf("Fit: %v", err)
			}
			ref := NewLogReg()
			ref.Epochs = 35
			if err := ref.FitReference(X, y, weights); err != nil {
				t.Fatalf("FitReference: %v", err)
			}
			sameModel(t, opt, ref, "dense fit")

			po, err := opt.PredictProba(X)
			if err != nil {
				t.Fatal(err)
			}
			pr, err := ref.PredictProbaReference(X)
			if err != nil {
				t.Fatal(err)
			}
			for i := range po {
				if po[i] != pr[i] {
					t.Fatalf("dense predict row %d: %v vs %v", i, po[i], pr[i])
				}
			}
		}
	}
}

// Grouped training re-associates shared-block sums, so it is not
// bit-identical to dense training — but it fits the same model: the
// standardizer matches exactly and weights agree to float tolerance.
func TestFitGroupedMatchesDenseApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	d, y, w := randGrouped(rng, 600, 5, 12, 14)
	X := materialize(d)

	grouped := NewLogReg()
	grouped.Epochs = 60
	if err := grouped.FitGrouped(d, y, w); err != nil {
		t.Fatal(err)
	}
	dense := NewLogReg()
	dense.Epochs = 60
	if err := dense.Fit(X, y, w); err != nil {
		t.Fatal(err)
	}
	for j := range dense.std.Mean {
		if grouped.std.Mean[j] != dense.std.Mean[j] || grouped.std.Scale[j] != dense.std.Scale[j] {
			t.Fatalf("standardizer col %d differs between grouped and dense", j)
		}
	}
	for j := range dense.weights {
		if math.Abs(grouped.weights[j]-dense.weights[j]) > 1e-9 {
			t.Fatalf("weight[%d] drifted: grouped %v dense %v", j, grouped.weights[j], dense.weights[j])
		}
	}
	if math.Abs(grouped.bias-dense.bias) > 1e-9 {
		t.Fatalf("bias drifted: grouped %v dense %v", grouped.bias, dense.bias)
	}
}

// A grouped-fitted model serves dense rows (the Index.Score path):
// PredictProba on materialized rows must agree with the grouped
// forward to float tolerance.
func TestGroupedModelServesDenseRows(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d, y, _ := randGrouped(rng, 300, 4, 6, 8)
	m := NewLogReg()
	m.Epochs = 30
	if err := m.FitGrouped(d, y, nil); err != nil {
		t.Fatal(err)
	}
	pg, err := m.PredictProbaGrouped(d)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := m.PredictProba(materialize(d))
	if err != nil {
		t.Fatal(err)
	}
	for i := range pg {
		if math.Abs(pg[i]-pd[i]) > 1e-12 {
			t.Fatalf("row %d: grouped %v dense %v", i, pg[i], pd[i])
		}
	}
}

func TestFitGroupedValidation(t *testing.T) {
	m := NewLogReg()
	bad := []*GroupedDesign{
		{},
		{Base: [][]float64{{1}}, Group: []int{0}},                                      // no shared rows but group id 0
		{Base: [][]float64{{1}, {2}}, Group: []int{0}, Shared: [][]float64{{1}}},       // group len mismatch
		{Base: [][]float64{{1}, {2, 3}}, Group: []int{0, 0}, Shared: [][]float64{{1}}}, // ragged base
		{Base: [][]float64{{1}, {2}}, Group: []int{0, 5}, Shared: [][]float64{{1}}},    // group out of range
	}
	for i, d := range bad {
		n := len(d.Base)
		y := make([]int, n)
		if err := m.FitGrouped(d, y, nil); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	// Label length mismatch.
	d := &GroupedDesign{Base: [][]float64{{1}, {2}}, Group: []int{0, 0}, Shared: [][]float64{{1, 2}}}
	if err := m.FitGrouped(d, []int{1}, nil); err == nil {
		t.Fatal("expected label-length error")
	}
	// Predict before fit.
	if _, err := NewLogReg().PredictProbaGrouped(d); err == nil {
		t.Fatal("expected not-fitted error")
	}
}
