package ml

import (
	"math"
)

// GaussianNB is a weighted Gaussian naive Bayes classifier: each
// column is modeled per class as an independent Gaussian; the
// posterior P(y=1|x) is the confidence score. Naive Bayes is known to
// produce poorly calibrated extreme scores, which makes it a useful
// stress case in §5.3.1's model sweep.
type GaussianNB struct {
	// VarSmoothing is added to every per-class variance for numerical
	// stability, scaled by the largest column variance.
	VarSmoothing float64

	prior  [2]float64   // class priors (weighted)
	mean   [2][]float64 // per-class column means
	vari   [2][]float64 // per-class column variances
	nCols  int
	fitted bool
}

// NewGaussianNB returns a classifier with scikit-learn-compatible
// default smoothing.
func NewGaussianNB() *GaussianNB {
	return &GaussianNB{VarSmoothing: 1e-9}
}

// Name implements Classifier.
func (m *GaussianNB) Name() string { return "naivebayes" }

// Fit implements Classifier.
func (m *GaussianNB) Fit(X [][]float64, y []int, w []float64) error {
	w, err := validateFit(X, y, w)
	if err != nil {
		return err
	}
	m.nCols = len(X[0])
	var classW [2]float64
	for c := 0; c < 2; c++ {
		m.mean[c] = make([]float64, m.nCols)
		m.vari[c] = make([]float64, m.nCols)
	}
	for i, row := range X {
		c := int(label01(y[i]))
		classW[c] += w[i]
		for j, v := range row {
			m.mean[c][j] += w[i] * v
		}
	}
	totalW := classW[0] + classW[1]
	for c := 0; c < 2; c++ {
		m.prior[c] = classW[c] / totalW
		if classW[c] == 0 {
			continue
		}
		for j := range m.mean[c] {
			m.mean[c][j] /= classW[c]
		}
	}
	for i, row := range X {
		c := int(label01(y[i]))
		for j, v := range row {
			d := v - m.mean[c][j]
			m.vari[c][j] += w[i] * d * d
		}
	}
	// Largest overall column variance scales the smoothing term, as in
	// the scikit-learn implementation.
	var maxVar float64
	for j := 0; j < m.nCols; j++ {
		var meanAll, varAll, n float64
		for i, row := range X {
			meanAll += w[i] * row[j]
			n += w[i]
		}
		meanAll /= n
		for i, row := range X {
			d := row[j] - meanAll
			varAll += w[i] * d * d
		}
		varAll /= n
		if varAll > maxVar {
			maxVar = varAll
		}
	}
	eps := m.VarSmoothing * maxVar
	if eps <= 0 {
		eps = 1e-12
	}
	for c := 0; c < 2; c++ {
		for j := range m.vari[c] {
			if classW[c] > 0 {
				m.vari[c][j] = m.vari[c][j]/classW[c] + eps
			} else {
				m.vari[c][j] = 1
			}
		}
	}
	m.fitted = true
	return nil
}

// PredictProba implements Classifier.
func (m *GaussianNB) PredictProba(X [][]float64) ([]float64, error) {
	if !m.fitted {
		return nil, ErrNotFitted
	}
	if err := validatePredict(X, m.nCols); err != nil {
		return nil, err
	}
	out := make([]float64, len(X))
	for i, row := range X {
		// Degenerate single-class training data.
		if m.prior[1] == 0 {
			out[i] = 0
			continue
		}
		if m.prior[0] == 0 {
			out[i] = 1
			continue
		}
		ll0 := math.Log(m.prior[0])
		ll1 := math.Log(m.prior[1])
		for j, v := range row {
			ll0 += gaussLogPDF(v, m.mean[0][j], m.vari[0][j])
			ll1 += gaussLogPDF(v, m.mean[1][j], m.vari[1][j])
		}
		// P(1|x) = 1 / (1 + exp(ll0 - ll1)), computed stably.
		out[i] = sigmoid(ll1 - ll0)
	}
	return out, nil
}

// FeatureImportance implements FeatureImporter using the normalized
// standardized mean difference between the two class conditionals —
// a common filter-style relevance proxy for NB models.
func (m *GaussianNB) FeatureImportance() []float64 {
	if !m.fitted {
		return nil
	}
	imp := make([]float64, m.nCols)
	var total float64
	for j := 0; j < m.nCols; j++ {
		pooled := math.Sqrt((m.vari[0][j] + m.vari[1][j]) / 2)
		if pooled > 0 {
			imp[j] = math.Abs(m.mean[1][j]-m.mean[0][j]) / pooled
		}
		total += imp[j]
	}
	if total > 0 {
		for j := range imp {
			imp[j] /= total
		}
	}
	return imp
}

func gaussLogPDF(x, mean, variance float64) float64 {
	d := x - mean
	return -0.5*math.Log(2*math.Pi*variance) - d*d/(2*variance)
}
