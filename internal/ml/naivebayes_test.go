package ml

import (
	"math"
	"testing"
)

func TestNBRecoverGaussians(t *testing.T) {
	// Symmetric class conditionals: at the midpoint the posterior must
	// be the prior (0.5 for balanced classes).
	var X [][]float64
	var y []int
	for i := 0; i < 200; i++ {
		off := float64(i%10)/10 - 0.45
		X = append(X, []float64{-2 + off})
		y = append(y, 0)
		X = append(X, []float64{2 + off})
		y = append(y, 1)
	}
	m := NewGaussianNB()
	if err := m.Fit(X, y, nil); err != nil {
		t.Fatal(err)
	}
	scores, err := m.PredictProba([][]float64{{0}, {-2}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(scores[0]-0.5) > 0.05 {
		t.Errorf("midpoint posterior = %v, want ≈ 0.5", scores[0])
	}
	if scores[1] > 0.05 {
		t.Errorf("class-0 center posterior = %v, want ≈ 0", scores[1])
	}
	if scores[2] < 0.95 {
		t.Errorf("class-1 center posterior = %v, want ≈ 1", scores[2])
	}
}

func TestNBPriorShift(t *testing.T) {
	// With the same likelihoods but a 3:1 prior for class 1, the
	// midpoint posterior moves to 0.75.
	X := [][]float64{{-1}, {1}, {1}, {1}}
	y := []int{0, 1, 1, 1}
	m := NewGaussianNB()
	if err := m.Fit(X, y, nil); err != nil {
		t.Fatal(err)
	}
	scores, err := m.PredictProba([][]float64{{0}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(scores[0]-0.75) > 0.05 {
		t.Errorf("midpoint posterior = %v, want ≈ 0.75", scores[0])
	}
}

func TestNBExtremeValuesStable(t *testing.T) {
	X, y := noisyData(100, 13)
	m := NewGaussianNB()
	if err := m.Fit(X, y, nil); err != nil {
		t.Fatal(err)
	}
	scores, err := m.PredictProba([][]float64{{1e9, -1e9}, {-1e9, 1e9}})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scores {
		if math.IsNaN(s) || s < 0 || s > 1 {
			t.Errorf("extreme input score = %v", s)
		}
	}
}

func TestNBFeatureImportance(t *testing.T) {
	m := NewGaussianNB()
	if m.FeatureImportance() != nil {
		t.Error("unfitted importance should be nil")
	}
	// Feature 0 separates the classes; feature 1 does not.
	var X [][]float64
	var y []int
	for i := 0; i < 100; i++ {
		c := i % 2
		X = append(X, []float64{float64(c)*4 - 2, float64(i%5) - 2})
		y = append(y, c)
	}
	if err := m.Fit(X, y, nil); err != nil {
		t.Fatal(err)
	}
	imp := m.FeatureImportance()
	var sum float64
	for _, v := range imp {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importances sum to %v", sum)
	}
	if imp[0] <= imp[1] {
		t.Errorf("importance = %v, want feature 0 dominant", imp)
	}
}

func TestGaussLogPDF(t *testing.T) {
	// Standard normal at 0: log(1/sqrt(2π)).
	want := -0.5 * math.Log(2*math.Pi)
	if got := gaussLogPDF(0, 0, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("gaussLogPDF(0,0,1) = %v, want %v", got, want)
	}
	// Symmetry around the mean.
	if a, b := gaussLogPDF(3, 1, 2), gaussLogPDF(-1, 1, 2); math.Abs(a-b) > 1e-12 {
		t.Errorf("pdf not symmetric: %v vs %v", a, b)
	}
}
