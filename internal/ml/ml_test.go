package ml

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// separableData builds a linearly separable 2-D dataset: class 1
// clusters around (+2,+2), class 0 around (-2,-2).
func separableData(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		sign := float64(2*c - 1) // -1 or +1
		X[i] = []float64{sign*2 + rng.NormFloat64()*0.4, sign*2 + rng.NormFloat64()*0.4}
		y[i] = c
	}
	return X, y
}

// noisyData builds a weakly separable dataset for calibration tests.
func noisyData(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		x1 := rng.NormFloat64()
		x2 := rng.NormFloat64()
		p := 1 / (1 + math.Exp(-(1.2*x1 - 0.7*x2)))
		X[i] = []float64{x1, x2}
		if rng.Float64() < p {
			y[i] = 1
		}
	}
	return X, y
}

// classifiers under test, freshly constructed per call.
func allClassifiers() []Classifier {
	return []Classifier{NewLogReg(), NewDecisionTree(), NewGaussianNB()}
}

func TestFitValidation(t *testing.T) {
	X := [][]float64{{1, 2}, {3, 4}}
	y := []int{0, 1}
	for _, clf := range allClassifiers() {
		t.Run(clf.Name(), func(t *testing.T) {
			if err := clf.Fit(nil, nil, nil); !errors.Is(err, ErrNoData) {
				t.Errorf("empty fit err = %v, want ErrNoData", err)
			}
			if err := clf.Fit(X, []int{1}, nil); !errors.Is(err, ErrShape) {
				t.Errorf("label mismatch err = %v, want ErrShape", err)
			}
			if err := clf.Fit([][]float64{{1}, {1, 2}}, y, nil); !errors.Is(err, ErrShape) {
				t.Errorf("ragged rows err = %v, want ErrShape", err)
			}
			if err := clf.Fit([][]float64{{}, {}}, y, nil); !errors.Is(err, ErrShape) {
				t.Errorf("zero columns err = %v, want ErrShape", err)
			}
			if err := clf.Fit(X, y, []float64{1}); !errors.Is(err, ErrBadWeights) {
				t.Errorf("weight length err = %v, want ErrBadWeights", err)
			}
			if err := clf.Fit(X, y, []float64{-1, 1}); !errors.Is(err, ErrBadWeights) {
				t.Errorf("negative weight err = %v, want ErrBadWeights", err)
			}
			if err := clf.Fit(X, y, []float64{0, 0}); !errors.Is(err, ErrBadWeights) {
				t.Errorf("zero weight err = %v, want ErrBadWeights", err)
			}
		})
	}
}

func TestPredictBeforeFit(t *testing.T) {
	for _, clf := range allClassifiers() {
		if _, err := clf.PredictProba([][]float64{{1, 2}}); !errors.Is(err, ErrNotFitted) {
			t.Errorf("%s: err = %v, want ErrNotFitted", clf.Name(), err)
		}
	}
}

func TestPredictShapeMismatch(t *testing.T) {
	X, y := separableData(40, 1)
	for _, clf := range allClassifiers() {
		if err := clf.Fit(X, y, nil); err != nil {
			t.Fatalf("%s fit: %v", clf.Name(), err)
		}
		if _, err := clf.PredictProba([][]float64{{1, 2, 3}}); !errors.Is(err, ErrShape) {
			t.Errorf("%s: err = %v, want ErrShape", clf.Name(), err)
		}
	}
}

func TestSeparableAccuracy(t *testing.T) {
	X, y := separableData(200, 2)
	for _, clf := range allClassifiers() {
		t.Run(clf.Name(), func(t *testing.T) {
			if err := clf.Fit(X, y, nil); err != nil {
				t.Fatal(err)
			}
			scores, err := clf.PredictProba(X)
			if err != nil {
				t.Fatal(err)
			}
			acc, err := Accuracy(scores, y, DefaultThreshold)
			if err != nil {
				t.Fatal(err)
			}
			if acc < 0.95 {
				t.Errorf("accuracy on separable data = %v, want >= 0.95", acc)
			}
		})
	}
}

func TestScoresInUnitInterval(t *testing.T) {
	X, y := noisyData(300, 3)
	for _, clf := range allClassifiers() {
		t.Run(clf.Name(), func(t *testing.T) {
			if err := clf.Fit(X, y, nil); err != nil {
				t.Fatal(err)
			}
			scores, err := clf.PredictProba(X)
			if err != nil {
				t.Fatal(err)
			}
			for i, s := range scores {
				if math.IsNaN(s) || s < 0 || s > 1 {
					t.Fatalf("score %d = %v outside [0,1]", i, s)
				}
			}
		})
	}
}

func TestWeightedEqualsDuplicated(t *testing.T) {
	// Property: training with integer weight k on a row must match
	// training with that row duplicated k times.
	X := [][]float64{{0, 1}, {1, 0}, {2, 2}, {-1, -2}, {0.5, 1.5}, {-2, 0}}
	y := []int{1, 0, 1, 0, 1, 0}
	w := []float64{1, 2, 3, 1, 2, 1}
	var dupX [][]float64
	var dupY []int
	for i := range X {
		for k := 0; k < int(w[i]); k++ {
			dupX = append(dupX, X[i])
			dupY = append(dupY, y[i])
		}
	}
	probe := [][]float64{{0.2, 0.3}, {1.5, -0.5}, {-1, 1}}
	for _, name := range []string{"logreg", "dtree", "naivebayes"} {
		t.Run(name, func(t *testing.T) {
			mk := func() Classifier {
				switch name {
				case "logreg":
					return NewLogReg()
				case "dtree":
					d := NewDecisionTree()
					d.MinLeafWeight = 1
					return d
				default:
					return NewGaussianNB()
				}
			}
			a, b := mk(), mk()
			if err := a.Fit(X, y, w); err != nil {
				t.Fatal(err)
			}
			if err := b.Fit(dupX, dupY, nil); err != nil {
				t.Fatal(err)
			}
			pa, err := a.PredictProba(probe)
			if err != nil {
				t.Fatal(err)
			}
			pb, err := b.PredictProba(probe)
			if err != nil {
				t.Fatal(err)
			}
			for i := range pa {
				if math.Abs(pa[i]-pb[i]) > 1e-6 {
					t.Errorf("probe %d: weighted %v vs duplicated %v", i, pa[i], pb[i])
				}
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	X, y := noisyData(150, 4)
	for _, kind := range AllModelKinds {
		a, err := New(kind)
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(kind)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Fit(X, y, nil); err != nil {
			t.Fatal(err)
		}
		if err := b.Fit(X, y, nil); err != nil {
			t.Fatal(err)
		}
		pa, _ := a.PredictProba(X)
		pb, _ := b.PredictProba(X)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("%v is nondeterministic at row %d: %v vs %v", kind, i, pa[i], pb[i])
			}
		}
	}
}

func TestRefitDiscardsState(t *testing.T) {
	X1, y1 := separableData(100, 5)
	// Second dataset with inverted labels.
	y2 := make([]int, len(y1))
	for i := range y1 {
		y2[i] = 1 - y1[i]
	}
	for _, clf := range allClassifiers() {
		if err := clf.Fit(X1, y1, nil); err != nil {
			t.Fatal(err)
		}
		s1, _ := clf.PredictProba(X1[:1])
		if err := clf.Fit(X1, y2, nil); err != nil {
			t.Fatal(err)
		}
		s2, _ := clf.PredictProba(X1[:1])
		// Refitting on inverted labels must flip the score's side.
		if (s1[0] >= 0.5) == (s2[0] >= 0.5) {
			t.Errorf("%s: refit did not change prediction (%v vs %v)", clf.Name(), s1[0], s2[0])
		}
	}
}

func TestSingleClassTraining(t *testing.T) {
	X := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	for _, clf := range allClassifiers() {
		t.Run(clf.Name()+"/all-positive", func(t *testing.T) {
			if err := clf.Fit(X, []int{1, 1, 1}, nil); err != nil {
				t.Fatal(err)
			}
			scores, err := clf.PredictProba(X)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range scores {
				if s < 0.5 {
					t.Errorf("all-positive training produced score %v < 0.5", s)
				}
			}
		})
	}
	for _, clf := range allClassifiers() {
		t.Run(clf.Name()+"/all-negative", func(t *testing.T) {
			if err := clf.Fit(X, []int{0, 0, 0}, nil); err != nil {
				t.Fatal(err)
			}
			scores, err := clf.PredictProba(X)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range scores {
				if s > 0.5 {
					t.Errorf("all-negative training produced score %v > 0.5", s)
				}
			}
		})
	}
}

func TestFactory(t *testing.T) {
	for _, kind := range AllModelKinds {
		clf, err := New(kind)
		if err != nil {
			t.Fatal(err)
		}
		if clf == nil || clf.Name() == "" {
			t.Errorf("kind %v produced bad classifier", kind)
		}
	}
	if _, err := New(ModelKind(42)); err == nil {
		t.Error("expected error for unknown kind")
	}
	names := map[ModelKind]string{
		ModelLogReg:       "Logistic Regression",
		ModelDecisionTree: "Decision Tree",
		ModelNaiveBayes:   "Naive Bayes",
	}
	for kind, want := range names {
		if got := kind.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(kind), got, want)
		}
	}
	if got := ModelKind(42).String(); got != "ModelKind(42)" {
		t.Errorf("unknown kind string = %q", got)
	}
}
