package ml

import "fmt"

// ModelKind enumerates the classifier families evaluated in §5.3.1.
type ModelKind int

const (
	ModelLogReg ModelKind = iota
	ModelDecisionTree
	ModelNaiveBayes
)

// String implements fmt.Stringer.
func (k ModelKind) String() string {
	switch k {
	case ModelLogReg:
		return "Logistic Regression"
	case ModelDecisionTree:
		return "Decision Tree"
	case ModelNaiveBayes:
		return "Naive Bayes"
	default:
		return fmt.Sprintf("ModelKind(%d)", int(k))
	}
}

// New returns a fresh classifier of the given kind with default
// hyperparameters, or an error for an unknown kind. Naive Bayes is
// wrapped with Platt scaling: its raw posteriors are overconfident
// under the correlated socio-economic features (see internal/ml
// Platt docs), and calibrated confidence scores are the paper's
// operating assumption (§2.2).
func New(kind ModelKind) (Classifier, error) {
	switch kind {
	case ModelLogReg:
		return NewLogReg(), nil
	case ModelDecisionTree:
		return NewDecisionTree(), nil
	case ModelNaiveBayes:
		return NewCalibrated(NewGaussianNB()), nil
	default:
		return nil, fmt.Errorf("ml: unknown model kind %d", int(kind))
	}
}

// AllModelKinds lists every supported kind in the order the paper's
// Figure 7 sweeps them.
var AllModelKinds = []ModelKind{ModelLogReg, ModelDecisionTree, ModelNaiveBayes}
