package ml

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestIsotonicValidation(t *testing.T) {
	iso := NewIsotonic()
	if err := iso.Fit(nil, nil, nil); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v", err)
	}
	if err := iso.Fit([]float64{0.5}, []int{1, 0}, nil); !errors.Is(err, ErrShape) {
		t.Errorf("err = %v", err)
	}
	if err := iso.Fit([]float64{0.5}, []int{1}, []float64{1, 2}); !errors.Is(err, ErrBadWeights) {
		t.Errorf("err = %v", err)
	}
	if err := iso.Fit([]float64{0.5}, []int{1}, []float64{-1}); !errors.Is(err, ErrBadWeights) {
		t.Errorf("err = %v", err)
	}
	if err := iso.Fit([]float64{0.5, 0.6}, []int{1, 0}, []float64{0, 0}); !errors.Is(err, ErrBadWeights) {
		t.Errorf("err = %v", err)
	}
	if _, err := iso.Apply([]float64{0.5}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("err = %v", err)
	}
}

func TestIsotonicPerfectSeparation(t *testing.T) {
	iso := NewIsotonic()
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []int{0, 0, 1, 1}
	if err := iso.Fit(scores, labels, nil); err != nil {
		t.Fatal(err)
	}
	out, err := iso.Apply(scores)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 || out[1] != 0 || out[2] != 1 || out[3] != 1 {
		t.Errorf("calibrated = %v, want [0 0 1 1]", out)
	}
}

func TestIsotonicPoolsViolators(t *testing.T) {
	// A label inversion (higher score, lower label) must be pooled
	// into one average block.
	iso := NewIsotonic()
	scores := []float64{0.3, 0.4}
	labels := []int{1, 0}
	if err := iso.Fit(scores, labels, nil); err != nil {
		t.Fatal(err)
	}
	out, err := iso.Apply([]float64{0.3, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-0.5) > 1e-12 || math.Abs(out[1]-0.5) > 1e-12 {
		t.Errorf("pooled block = %v, want [0.5 0.5]", out)
	}
}

func TestIsotonicWeighted(t *testing.T) {
	// Weight 3 on the positive pulls the pooled mean to 0.75.
	iso := NewIsotonic()
	if err := iso.Fit([]float64{0.3, 0.4}, []int{1, 0}, []float64{3, 1}); err != nil {
		t.Fatal(err)
	}
	out, err := iso.Apply([]float64{0.35})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-0.75) > 1e-12 {
		t.Errorf("weighted pooled mean = %v, want 0.75", out[0])
	}
}

func TestIsotonicClampOutsideRange(t *testing.T) {
	iso := NewIsotonic()
	if err := iso.Fit([]float64{0.4, 0.6}, []int{0, 1}, nil); err != nil {
		t.Fatal(err)
	}
	out, err := iso.Apply([]float64{0.0, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 || out[1] != 1 {
		t.Errorf("clamped = %v, want [0 1]", out)
	}
}

func TestIsotonicMonotoneProperty(t *testing.T) {
	// Property: the fitted function is monotone non-decreasing on any
	// input, for any training data.
	f := func(seed int64) bool {
		scores, labels := overconfidentScores(60, seed)
		iso := NewIsotonic()
		if err := iso.Fit(scores, labels, nil); err != nil {
			return false
		}
		probe := append([]float64(nil), scores...)
		sort.Float64s(probe)
		out, err := iso.Apply(probe)
		if err != nil {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i] < out[i-1]-1e-12 {
				return false
			}
		}
		for _, v := range out {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestIsotonicReducesMiscalibration(t *testing.T) {
	scores, labels := overconfidentScores(2000, 99)
	iso := NewIsotonic()
	if err := iso.Fit(scores, labels, nil); err != nil {
		t.Fatal(err)
	}
	calibrated, err := iso.Apply(scores)
	if err != nil {
		t.Fatal(err)
	}
	before := binnedECE(scores, labels, 10)
	after := binnedECE(calibrated, labels, 10)
	if after >= before*0.7 {
		t.Errorf("isotonic did not help: ECE %v -> %v", before, after)
	}
}

func TestIsotonicZeroWeightPointsIgnored(t *testing.T) {
	iso := NewIsotonic()
	// The zero-weight inverted point must not affect the fit.
	if err := iso.Fit([]float64{0.2, 0.5, 0.8}, []int{0, 1, 1}, []float64{1, 0, 1}); err != nil {
		t.Fatal(err)
	}
	out, err := iso.Apply([]float64{0.2, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 || out[1] != 1 {
		t.Errorf("calibrated = %v, want [0 1]", out)
	}
}
