package ml

import (
	"fmt"
	"math"
)

// Standardizer shifts and scales columns to zero mean and unit
// variance, weighted by sample weights. Constant columns are left
// centered with scale 1 so they do not blow up.
type Standardizer struct {
	Mean  []float64
	Scale []float64
}

// FitStandardizer computes weighted column means and standard
// deviations. w must be validated (non-nil, non-negative, positive
// sum) by the caller.
func FitStandardizer(X [][]float64, w []float64) (*Standardizer, error) {
	if len(X) == 0 {
		return nil, ErrNoData
	}
	cols := len(X[0])
	s := &Standardizer{
		Mean:  make([]float64, cols),
		Scale: make([]float64, cols),
	}
	var totalW float64
	for i, row := range X {
		if len(row) != cols {
			return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrShape, i, len(row), cols)
		}
		for j, v := range row {
			s.Mean[j] += w[i] * v
		}
		totalW += w[i]
	}
	if totalW <= 0 {
		return nil, fmt.Errorf("%w: weights sum to %v", ErrBadWeights, totalW)
	}
	for j := range s.Mean {
		s.Mean[j] /= totalW
	}
	for i, row := range X {
		for j, v := range row {
			d := v - s.Mean[j]
			s.Scale[j] += w[i] * d * d
		}
	}
	for j := range s.Scale {
		s.Scale[j] = math.Sqrt(s.Scale[j] / totalW)
		if s.Scale[j] < 1e-12 {
			s.Scale[j] = 1 // constant column: center only
		}
	}
	return s, nil
}

// Transform returns a standardized copy of X.
func (s *Standardizer) Transform(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		r := make([]float64, len(row))
		for j, v := range row {
			r[j] = (v - s.Mean[j]) / s.Scale[j]
		}
		out[i] = r
	}
	return out
}
