package ml

import (
	"fmt"
	"math"
)

// Platt is Platt scaling [Platt 1999], the paper's reference
// post-processing calibration technique ([25] in its related work):
// a one-dimensional logistic regression mapping raw confidence
// scores to calibrated probabilities via sigmoid(a·logit(s) + b).
//
// It is used two ways in this library: wrapped around Gaussian naive
// Bayes (whose independence assumption makes raw posteriors
// overconfident under correlated features), and as the standalone
// post-processing mitigation baseline.
type Platt struct {
	// MaxIter and LearningRate control the fitting loop.
	MaxIter      int
	LearningRate float64

	a, b   float64
	fitted bool
}

// NewPlatt returns a calibrator with defaults adequate for
// paper-scale data.
func NewPlatt() *Platt {
	return &Platt{MaxIter: 200, LearningRate: 0.5}
}

// Fit learns the scaling from raw scores and labels, optionally
// weighted (nil = uniform).
func (p *Platt) Fit(scores []float64, labels []int, w []float64) error {
	if len(scores) == 0 {
		return ErrNoData
	}
	if len(labels) != len(scores) {
		return fmt.Errorf("%w: %d scores vs %d labels", ErrShape, len(scores), len(labels))
	}
	if w != nil && len(w) != len(scores) {
		return fmt.Errorf("%w: %d weights for %d scores", ErrBadWeights, len(w), len(scores))
	}
	if p.MaxIter <= 0 || p.LearningRate <= 0 {
		return fmt.Errorf("ml: platt needs positive MaxIter and LearningRate, got %d and %v", p.MaxIter, p.LearningRate)
	}
	z := make([]float64, len(scores))
	for i, s := range scores {
		z[i] = safeLogit(s)
	}
	var totalW float64
	weight := func(i int) float64 {
		if w == nil {
			return 1
		}
		return w[i]
	}
	for i := range scores {
		wi := weight(i)
		if wi < 0 {
			return fmt.Errorf("%w: negative weight %v at %d", ErrBadWeights, wi, i)
		}
		totalW += wi
	}
	if totalW <= 0 {
		return fmt.Errorf("%w: weights sum to %v", ErrBadWeights, totalW)
	}
	// Standardize the logits so one learning rate fits all scales.
	var mean, sd float64
	for i, zi := range z {
		mean += weight(i) * zi
	}
	mean /= totalW
	for i, zi := range z {
		d := zi - mean
		sd += weight(i) * d * d
	}
	sd = math.Sqrt(sd / totalW)
	if sd < 1e-12 {
		sd = 1
	}

	// Weighted 1-D logistic regression by gradient descent on the
	// standardized logit; fold the standardization back at the end.
	var aStd, bStd float64 = 1, 0
	for iter := 0; iter < p.MaxIter; iter++ {
		var gradA, gradB float64
		for i, zi := range z {
			x := (zi - mean) / sd
			pred := sigmoid(aStd*x + bStd)
			g := weight(i) * (pred - label01(labels[i]))
			gradA += g * x
			gradB += g
		}
		aStd -= p.LearningRate * gradA / totalW
		bStd -= p.LearningRate * gradB / totalW
	}
	p.a = aStd / sd
	p.b = bStd - aStd*mean/sd
	p.fitted = true
	return nil
}

// Apply maps raw scores to calibrated probabilities. It returns an
// error before Fit.
func (p *Platt) Apply(scores []float64) ([]float64, error) {
	if !p.fitted {
		return nil, ErrNotFitted
	}
	out := make([]float64, len(scores))
	for i, s := range scores {
		out[i] = sigmoid(p.a*safeLogit(s) + p.b)
	}
	return out, nil
}

// Coefficients returns the fitted (a, b) of sigmoid(a·logit(s) + b).
func (p *Platt) Coefficients() (a, b float64, err error) {
	if !p.fitted {
		return 0, 0, ErrNotFitted
	}
	return p.a, p.b, nil
}

// safeLogit is log(s/(1−s)) with the input clamped away from 0 and 1
// so extreme classifier outputs stay finite.
func safeLogit(s float64) float64 {
	const eps = 1e-7
	if s < eps {
		s = eps
	}
	if s > 1-eps {
		s = 1 - eps
	}
	return math.Log(s / (1 - s))
}

// CalibratedClassifier wraps a base classifier with Platt scaling
// fitted on the training data (the common remedy for naive Bayes'
// overconfident posteriors, cf. scikit-learn's
// CalibratedClassifierCV).
type CalibratedClassifier struct {
	Base     Classifier
	platt    *Platt
	fitted   bool
	baseName string
}

// NewCalibrated wraps base with training-set Platt scaling.
func NewCalibrated(base Classifier) *CalibratedClassifier {
	return &CalibratedClassifier{Base: base, baseName: base.Name()}
}

// Name implements Classifier.
func (c *CalibratedClassifier) Name() string { return c.baseName + "+platt" }

// Fit implements Classifier: it fits the base model, then the scaler
// on the base model's own training scores.
func (c *CalibratedClassifier) Fit(X [][]float64, y []int, w []float64) error {
	if err := c.Base.Fit(X, y, w); err != nil {
		return err
	}
	raw, err := c.Base.PredictProba(X)
	if err != nil {
		return err
	}
	c.platt = NewPlatt()
	if err := c.platt.Fit(raw, y, w); err != nil {
		return err
	}
	c.fitted = true
	return nil
}

// PredictProba implements Classifier.
func (c *CalibratedClassifier) PredictProba(X [][]float64) ([]float64, error) {
	if !c.fitted {
		return nil, ErrNotFitted
	}
	raw, err := c.Base.PredictProba(X)
	if err != nil {
		return nil, err
	}
	return c.platt.Apply(raw)
}

// FeatureImportance delegates to the base model when available.
func (c *CalibratedClassifier) FeatureImportance() []float64 {
	if imp, ok := c.Base.(FeatureImporter); ok {
		return imp.FeatureImportance()
	}
	return nil
}
