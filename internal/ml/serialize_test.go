package ml

import (
	"math"
	"testing"
)

// trainingData returns a small deterministic binary problem.
func trainingData() ([][]float64, []int) {
	X := make([][]float64, 60)
	y := make([]int, 60)
	for i := range X {
		a := float64(i%10) / 10
		b := float64((i*7)%13) / 13
		X[i] = []float64{a, b, a*b + 0.1}
		if a+b > 0.9 {
			y[i] = 1
		}
	}
	return X, y
}

func TestClassifierSerializeRoundTrip(t *testing.T) {
	X, y := trainingData()
	for _, kind := range AllModelKinds {
		t.Run(kind.String(), func(t *testing.T) {
			clf, err := New(kind)
			if err != nil {
				t.Fatal(err)
			}
			if err := clf.Fit(X, y, nil); err != nil {
				t.Fatal(err)
			}
			want, err := clf.PredictProba(X)
			if err != nil {
				t.Fatal(err)
			}
			blob, err := MarshalClassifier(clf)
			if err != nil {
				t.Fatal(err)
			}
			back, err := UnmarshalClassifier(blob)
			if err != nil {
				t.Fatal(err)
			}
			if back.Name() != clf.Name() {
				t.Errorf("name = %q, want %q", back.Name(), clf.Name())
			}
			got, err := back.PredictProba(X)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("row %d: score %v != %v after round trip", i, got[i], want[i])
				}
			}
		})
	}
}

func TestCalibratorSerializeRoundTrip(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.35, 0.5, 0.62, 0.7, 0.85, 0.9, 0.95, 0.3}
	labels := []int{0, 0, 0, 1, 0, 1, 1, 1, 1, 0}
	for _, tt := range []struct {
		name string
		cal  ScoreCalibrator
	}{
		{"platt", NewPlatt()},
		{"isotonic", NewIsotonic()},
	} {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.cal.Fit(scores, labels, nil); err != nil {
				t.Fatal(err)
			}
			want, err := tt.cal.Apply(scores)
			if err != nil {
				t.Fatal(err)
			}
			blob, err := MarshalCalibrator(tt.cal)
			if err != nil {
				t.Fatal(err)
			}
			back, err := UnmarshalCalibrator(blob)
			if err != nil {
				t.Fatal(err)
			}
			got, err := back.Apply(scores)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("score %d: %v != %v after round trip", i, got[i], want[i])
				}
			}
		})
	}
}

func TestSerializeUnfitted(t *testing.T) {
	if _, err := MarshalClassifier(NewLogReg()); err == nil {
		t.Error("expected error for unfitted logreg")
	}
	if _, err := MarshalCalibrator(NewPlatt()); err == nil {
		t.Error("expected error for unfitted platt")
	}
}

func TestDeserializeCorrupt(t *testing.T) {
	X, y := trainingData()
	clf := NewLogReg()
	if err := clf.Fit(X, y, nil); err != nil {
		t.Fatal(err)
	}
	blob, err := MarshalClassifier(clf)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]byte{nil, {0xFF}, blob[:len(blob)/2], {9, 9, 9}} {
		if _, err := UnmarshalClassifier(bad); err == nil {
			t.Errorf("expected error for corrupt input %v", bad)
		}
	}
	if _, err := UnmarshalCalibrator([]byte{0x7F}); err == nil {
		t.Error("expected error for unknown calibrator tag")
	}
}

func TestSerializedScoresStayFinite(t *testing.T) {
	X, y := trainingData()
	clf, err := New(ModelNaiveBayes)
	if err != nil {
		t.Fatal(err)
	}
	if err := clf.Fit(X, y, nil); err != nil {
		t.Fatal(err)
	}
	blob, err := MarshalClassifier(clf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalClassifier(blob)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := back.PredictProba(X)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range scores {
		if math.IsNaN(s) || s < 0 || s > 1 {
			t.Fatalf("score %d = %v out of [0,1]", i, s)
		}
	}
}
