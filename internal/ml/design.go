package ml

import "fmt"

// GroupedDesign is a design matrix in factorized form: row i of the
// materialized matrix is the concatenation of Base[i] (per-row
// columns) and Shared[Group[i]] (columns shared by every row of the
// same group). This is exactly the shape the pipeline's neighborhood
// encodings have — a record's location block depends only on its
// region — and it is what makes build-time training tractable at
// 100k–1M records: the wide shared block (centroid + one-hot columns)
// is touched once per group per epoch instead of once per row.
//
// A GroupedDesign may share backing arrays with the caller; fitters
// only read it.
type GroupedDesign struct {
	Base   [][]float64 // n rows × B per-row columns (B may be 0)
	Group  []int       // n group ids in [0, len(Shared))
	Shared [][]float64 // G rows × S shared columns
}

// Rows returns the number of design rows.
func (d *GroupedDesign) Rows() int { return len(d.Base) }

// BaseCols returns B, the per-row column count.
func (d *GroupedDesign) BaseCols() int {
	if len(d.Base) == 0 {
		return 0
	}
	return len(d.Base[0])
}

// SharedCols returns S, the shared column count.
func (d *GroupedDesign) SharedCols() int {
	if len(d.Shared) == 0 {
		return 0
	}
	return len(d.Shared[0])
}

// Cols returns the column count B+S of the materialized matrix.
func (d *GroupedDesign) Cols() int { return d.BaseCols() + d.SharedCols() }

// Row materializes one dense row in the column order the fitters use
// (base columns first, then shared). Reference code and tests use it;
// the optimized paths never materialize rows.
func (d *GroupedDesign) Row(i int) []float64 {
	out := make([]float64, 0, d.Cols())
	out = append(out, d.Base[i]...)
	return append(out, d.Shared[d.Group[i]]...)
}

// validate checks the shape invariants shared by the grouped fitters.
func (d *GroupedDesign) validate() error {
	n := len(d.Base)
	if n == 0 {
		return ErrNoData
	}
	if len(d.Group) != n {
		return fmt.Errorf("%w: %d base rows vs %d group ids", ErrShape, n, len(d.Group))
	}
	b := len(d.Base[0])
	for i, row := range d.Base {
		if len(row) != b {
			return fmt.Errorf("%w: base row %d has %d columns, want %d", ErrShape, i, len(row), b)
		}
	}
	g := len(d.Shared)
	var s int
	if g > 0 {
		s = len(d.Shared[0])
	}
	for r, row := range d.Shared {
		if len(row) != s {
			return fmt.Errorf("%w: shared row %d has %d columns, want %d", ErrShape, r, len(row), s)
		}
	}
	if b+s == 0 {
		return fmt.Errorf("%w: design has no columns", ErrShape)
	}
	for i, gi := range d.Group {
		if gi < 0 || gi >= g {
			return fmt.Errorf("%w: row %d group id %d out of range [0,%d)", ErrShape, i, gi, g)
		}
	}
	return nil
}
