package ml

import (
	"fmt"
	"math"
)

// FitGrouped trains the model on a factorized design matrix. It fits
// the same logistic regression Fit would on the materialized rows,
// but exploits the factorization so one full-batch epoch costs
// O(n·B + G·S) instead of O(n·(B+S)):
//
//   - the forward pass computes each group's shared-block partial dot
//     product once per epoch and adds it to the per-row base dot;
//   - the shared-column gradient folds per-group residual sums
//     (accumulated in row order) into the shared rows, group-major.
//
// The floating-point grouping of the shared-block sums therefore
// differs from the dense loop — this is the pipeline's one deliberate
// numeric re-association (see DESIGN.md §10). The exact semantics are
// pinned bit-identically by FitGroupedReference, the retained naive
// implementation, via the build parity tests: pooling, flat buffers
// and Workers never change a bit.
//
// Standardization is NOT re-associated: means and scales accumulate
// in the same row-then-column order as the dense path, so they are
// bit-identical to fitting on materialized rows.
func (m *LogReg) FitGrouped(d *GroupedDesign, y []int, w []float64) error {
	if err := d.validate(); err != nil {
		return err
	}
	n := d.Rows()
	if len(y) != n {
		return fmt.Errorf("%w: %d rows vs %d labels", ErrShape, n, len(y))
	}
	sc := scratchPool.Get().(*fitScratch)
	defer scratchPool.Put(sc)
	w, err := effectiveWeights(n, w, sc)
	if err != nil {
		return err
	}
	if m.Epochs <= 0 || m.LearningRate <= 0 {
		return fmt.Errorf("ml: logreg needs positive epochs and learning rate, got %d and %v", m.Epochs, m.LearningRate)
	}
	m.std, err = fitStandardizerGrouped(d, w)
	if err != nil {
		return err
	}
	bcols, scols := d.BaseCols(), d.SharedCols()
	cols := bcols + scols
	numG := len(d.Shared)
	mean, scale := m.std.Mean, m.std.Scale

	// Standardize both blocks once, into flat row-major tables.
	zb := grown(sc.zbase, n*bcols)
	sc.zbase = zb
	for i, row := range d.Base {
		off := i * bcols
		for j, v := range row {
			zb[off+j] = (v - mean[j]) / scale[j]
		}
	}
	zs := grown(sc.zshared, numG*scols)
	sc.zshared = zs
	for r, row := range d.Shared {
		off := r * scols
		for j, v := range row {
			zs[off+j] = (v - mean[bcols+j]) / scale[bcols+j]
		}
	}

	var totalW float64
	for _, wi := range w {
		totalW += wi
	}

	m.weights = make([]float64, cols)
	m.bias = 0
	grad := grown(sc.grad, cols)
	sc.grad = grad
	sdot := grown(sc.sharedDot, numG)
	sc.sharedDot = sdot
	sgrad := grown(sc.sharedGrad, numG)
	sc.sharedGrad = sgrad
	preds := grown(sc.preds, n)
	sc.preds = preds
	group := d.Group

	for epoch := 0; epoch < m.Epochs; epoch++ {
		// Per-group shared-block dot products for this epoch's weights.
		wShared := m.weights[bcols:]
		for r := 0; r < numG; r++ {
			row := zs[r*scols : r*scols+scols]
			var s float64
			for j, v := range row {
				s += wShared[j] * v
			}
			sdot[r] = s
		}
		// Forward pass: rows independent, chunks may run in parallel.
		parallelRows(n, m.Workers, func(lo, hi int) {
			wt, bias := m.weights, m.bias
			for i := lo; i < hi; i++ {
				row := zb[i*bcols : i*bcols+bcols]
				var u float64
				for j, v := range row {
					u += wt[j] * v
				}
				preds[i] = sigmoid(u + sdot[group[i]] + bias)
			}
		})
		// Accumulation: strictly sequential in row order.
		for j := range grad {
			grad[j] = 0
		}
		for r := range sgrad {
			sgrad[r] = 0
		}
		var gradB float64
		for i := 0; i < n; i++ {
			g := w[i] * (preds[i] - label01(y[i]))
			row := zb[i*bcols : i*bcols+bcols]
			for j, v := range row {
				grad[j] += g * v
			}
			sgrad[group[i]] += g
			gradB += g
		}
		// Fold the shared-column gradient, group-major (r ascending per
		// column — the defined order).
		for r := 0; r < numG; r++ {
			gr := sgrad[r]
			row := zs[r*scols : r*scols+scols]
			for j, v := range row {
				grad[bcols+j] += gr * v
			}
		}
		inv := 1 / totalW
		for j := 0; j < cols; j++ {
			m.weights[j] -= m.LearningRate * (grad[j]*inv + m.L2*m.weights[j])
		}
		m.bias -= m.LearningRate * gradB * inv
	}
	m.fitted = true
	return nil
}

// PredictProbaGrouped scores a factorized design with the grouped
// forward pass (per-group shared dot + per-row base dot) — the same
// association FitGrouped trains with, so pipeline-reported scores are
// consistent with training. Bit-identically pinned by
// PredictProbaGroupedReference.
func (m *LogReg) PredictProbaGrouped(d *GroupedDesign) ([]float64, error) {
	if !m.fitted {
		return nil, ErrNotFitted
	}
	if err := d.validate(); err != nil {
		return nil, err
	}
	bcols, scols := d.BaseCols(), d.SharedCols()
	if bcols+scols != len(m.weights) {
		return nil, fmt.Errorf("%w: design has %d columns, model was fitted on %d", ErrShape, bcols+scols, len(m.weights))
	}
	mean, scale := m.std.Mean, m.std.Scale
	sdot := make([]float64, len(d.Shared))
	wShared := m.weights[bcols:]
	for r, row := range d.Shared {
		var s float64
		for j, v := range row {
			s += wShared[j] * ((v - mean[bcols+j]) / scale[bcols+j])
		}
		sdot[r] = s
	}
	out := make([]float64, d.Rows())
	group := d.Group
	parallelRows(d.Rows(), m.Workers, func(lo, hi int) {
		wt, bias := m.weights, m.bias
		for i := lo; i < hi; i++ {
			var u float64
			for j, v := range d.Base[i] {
				u += wt[j] * ((v - mean[j]) / scale[j])
			}
			out[i] = sigmoid(u + sdot[group[i]] + bias)
		}
	})
	return out, nil
}

// fitStandardizerGrouped computes the weighted column means and
// scales FitStandardizer would produce on the materialized matrix.
// The per-column accumulation order is identical (rows ascending,
// base-then-shared within each row), so the result is bit-identical
// to the dense path — standardization is deliberately NOT part of the
// grouped re-association.
func fitStandardizerGrouped(d *GroupedDesign, w []float64) (*Standardizer, error) {
	bcols := d.BaseCols()
	cols := bcols + d.SharedCols()
	st := &Standardizer{
		Mean:  make([]float64, cols),
		Scale: make([]float64, cols),
	}
	var totalW float64
	for i, row := range d.Base {
		wi := w[i]
		for j, v := range row {
			st.Mean[j] += wi * v
		}
		for j, v := range d.Shared[d.Group[i]] {
			st.Mean[bcols+j] += wi * v
		}
		totalW += wi
	}
	if totalW <= 0 {
		return nil, fmt.Errorf("%w: weights sum to %v", ErrBadWeights, totalW)
	}
	for j := range st.Mean {
		st.Mean[j] /= totalW
	}
	for i, row := range d.Base {
		wi := w[i]
		for j, v := range row {
			dv := v - st.Mean[j]
			st.Scale[j] += wi * dv * dv
		}
		for j, v := range d.Shared[d.Group[i]] {
			dv := v - st.Mean[bcols+j]
			st.Scale[bcols+j] += wi * dv * dv
		}
	}
	for j := range st.Scale {
		st.Scale[j] = math.Sqrt(st.Scale[j] / totalW)
		if st.Scale[j] < 1e-12 {
			st.Scale[j] = 1 // constant column: center only
		}
	}
	return st, nil
}
