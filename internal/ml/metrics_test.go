package ml

import (
	"math"
	"testing"
)

func TestAccuracy(t *testing.T) {
	tests := []struct {
		name   string
		scores []float64
		y      []int
		want   float64
	}{
		{"perfect", []float64{0.9, 0.1}, []int{1, 0}, 1},
		{"inverted", []float64{0.1, 0.9}, []int{1, 0}, 0},
		{"half", []float64{0.9, 0.9}, []int{1, 0}, 0.5},
		{"threshold boundary counts as positive", []float64{0.5}, []int{1}, 1},
		{"empty", nil, nil, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Accuracy(tt.scores, tt.y, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Accuracy = %v, want %v", got, tt.want)
			}
		})
	}
	if _, err := Accuracy([]float64{0.5}, nil, 0.5); err == nil {
		t.Error("expected shape error")
	}
}

func TestAUC(t *testing.T) {
	tests := []struct {
		name   string
		scores []float64
		y      []int
		want   float64
	}{
		{"perfect ranking", []float64{0.1, 0.2, 0.8, 0.9}, []int{0, 0, 1, 1}, 1},
		{"inverted ranking", []float64{0.9, 0.8, 0.2, 0.1}, []int{0, 0, 1, 1}, 0},
		{"random ties", []float64{0.5, 0.5, 0.5, 0.5}, []int{0, 1, 0, 1}, 0.5},
		{"single class", []float64{0.1, 0.9}, []int{1, 1}, 0.5},
		{"partial", []float64{0.1, 0.6, 0.4, 0.9}, []int{0, 0, 1, 1}, 0.75},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := AUC(tt.scores, tt.y)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("AUC = %v, want %v", got, tt.want)
			}
		})
	}
	if _, err := AUC([]float64{0.5}, nil); err == nil {
		t.Error("expected shape error")
	}
}

func TestConfusion(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.4}
	y := []int{1, 0, 1, 0}
	cm, err := Confusion(scores, y, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if cm != (ConfusionMatrix{TP: 1, FP: 1, TN: 1, FN: 1}) {
		t.Errorf("confusion = %+v", cm)
	}
	if math.Abs(cm.Precision()-0.5) > 1e-12 {
		t.Errorf("precision = %v", cm.Precision())
	}
	if math.Abs(cm.Recall()-0.5) > 1e-12 {
		t.Errorf("recall = %v", cm.Recall())
	}
	if math.Abs(cm.F1()-0.5) > 1e-12 {
		t.Errorf("f1 = %v", cm.F1())
	}
	if _, err := Confusion(scores, y[:2], 0.5); err == nil {
		t.Error("expected shape error")
	}
}

func TestConfusionDegenerate(t *testing.T) {
	var cm ConfusionMatrix
	if cm.Precision() != 0 || cm.Recall() != 0 || cm.F1() != 0 {
		t.Error("empty confusion matrix metrics should be 0")
	}
}
