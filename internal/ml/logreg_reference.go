package ml

import "fmt"

// This file retains the naive logistic-regression implementations the
// optimized paths are pinned against. They are deliberately
// sequential and allocation-heavy: fresh buffers everywhere, no
// scratch pooling, no flat matrices, no worker pools. Their value is
// that they share none of the optimized paths' machinery while
// defining the exact same floating-point operations in the exact same
// order — so a parity test that demands bit-identical outputs
// (internal/pipeline TestBuildReferenceParity and the root
// TestIndexBuildParity) proves the optimizations are pure-perf.
//
// Do not "improve" these: every allocation and loop below is the
// specification.

// FitReference is the retained pre-overhaul dense training loop
// (standardize via Transform, per-row dot, in-place gradient). Fit is
// bit-identical to it for all inputs and any Workers setting.
func (m *LogReg) FitReference(X [][]float64, y []int, w []float64) error {
	w, err := validateFit(X, y, w)
	if err != nil {
		return err
	}
	if m.Epochs <= 0 || m.LearningRate <= 0 {
		return fmt.Errorf("ml: logreg needs positive epochs and learning rate, got %d and %v", m.Epochs, m.LearningRate)
	}
	m.std, err = FitStandardizer(X, w)
	if err != nil {
		return err
	}
	Z := m.std.Transform(X)
	n, cols := len(Z), len(Z[0])

	var totalW float64
	for _, wi := range w {
		totalW += wi
	}

	m.weights = make([]float64, cols)
	m.bias = 0
	grad := make([]float64, cols)

	for epoch := 0; epoch < m.Epochs; epoch++ {
		for j := range grad {
			grad[j] = 0
		}
		var gradB float64
		for i := 0; i < n; i++ {
			p := sigmoid(dot(m.weights, Z[i]) + m.bias)
			g := w[i] * (p - label01(y[i]))
			row := Z[i]
			for j := 0; j < cols; j++ {
				grad[j] += g * row[j]
			}
			gradB += g
		}
		inv := 1 / totalW
		for j := 0; j < cols; j++ {
			m.weights[j] -= m.LearningRate * (grad[j]*inv + m.L2*m.weights[j])
		}
		m.bias -= m.LearningRate * gradB * inv
	}
	m.fitted = true
	return nil
}

// PredictProbaReference is the retained transform-then-dot scoring
// loop; PredictProba is bit-identical to it.
func (m *LogReg) PredictProbaReference(X [][]float64) ([]float64, error) {
	if !m.fitted {
		return nil, ErrNotFitted
	}
	if err := validatePredict(X, len(m.weights)); err != nil {
		return nil, err
	}
	Z := m.std.Transform(X)
	out := make([]float64, len(Z))
	for i, row := range Z {
		out[i] = sigmoid(dot(m.weights, row) + m.bias)
	}
	return out, nil
}

// FitGroupedReference is the naive twin of FitGrouped: the same
// grouped arithmetic (per-group shared dots, per-group gradient sums
// folded group-major) written with fresh allocations per epoch and no
// parallelism. FitGrouped is bit-identical to it.
func (m *LogReg) FitGroupedReference(d *GroupedDesign, y []int, w []float64) error {
	if err := d.validate(); err != nil {
		return err
	}
	n := d.Rows()
	if len(y) != n {
		return fmt.Errorf("%w: %d rows vs %d labels", ErrShape, n, len(y))
	}
	if w == nil {
		w = make([]float64, n)
		for i := range w {
			w[i] = 1
		}
	} else {
		if len(w) != n {
			return fmt.Errorf("%w: %d weights for %d rows", ErrBadWeights, len(w), n)
		}
		var total float64
		for i, wi := range w {
			if wi < 0 {
				return fmt.Errorf("%w: negative weight %v at row %d", ErrBadWeights, wi, i)
			}
			total += wi
		}
		if total <= 0 {
			return fmt.Errorf("%w: weights sum to %v", ErrBadWeights, total)
		}
	}
	if m.Epochs <= 0 || m.LearningRate <= 0 {
		return fmt.Errorf("ml: logreg needs positive epochs and learning rate, got %d and %v", m.Epochs, m.LearningRate)
	}
	var err error
	m.std, err = fitStandardizerGrouped(d, w)
	if err != nil {
		return err
	}
	bcols, scols := d.BaseCols(), d.SharedCols()
	cols := bcols + scols
	numG := len(d.Shared)
	mean, scale := m.std.Mean, m.std.Scale

	zb := make([][]float64, n)
	for i, row := range d.Base {
		zi := make([]float64, bcols)
		for j, v := range row {
			zi[j] = (v - mean[j]) / scale[j]
		}
		zb[i] = zi
	}
	zs := make([][]float64, numG)
	for r, row := range d.Shared {
		zr := make([]float64, scols)
		for j, v := range row {
			zr[j] = (v - mean[bcols+j]) / scale[bcols+j]
		}
		zs[r] = zr
	}

	var totalW float64
	for _, wi := range w {
		totalW += wi
	}

	m.weights = make([]float64, cols)
	m.bias = 0

	for epoch := 0; epoch < m.Epochs; epoch++ {
		sdot := make([]float64, numG)
		for r := 0; r < numG; r++ {
			var s float64
			for j, v := range zs[r] {
				s += m.weights[bcols+j] * v
			}
			sdot[r] = s
		}
		preds := make([]float64, n)
		for i := 0; i < n; i++ {
			var u float64
			for j, v := range zb[i] {
				u += m.weights[j] * v
			}
			preds[i] = sigmoid(u + sdot[d.Group[i]] + m.bias)
		}
		grad := make([]float64, cols)
		sgrad := make([]float64, numG)
		var gradB float64
		for i := 0; i < n; i++ {
			g := w[i] * (preds[i] - label01(y[i]))
			for j, v := range zb[i] {
				grad[j] += g * v
			}
			sgrad[d.Group[i]] += g
			gradB += g
		}
		for r := 0; r < numG; r++ {
			gr := sgrad[r]
			for j, v := range zs[r] {
				grad[bcols+j] += gr * v
			}
		}
		inv := 1 / totalW
		for j := 0; j < cols; j++ {
			m.weights[j] -= m.LearningRate * (grad[j]*inv + m.L2*m.weights[j])
		}
		m.bias -= m.LearningRate * gradB * inv
	}
	m.fitted = true
	return nil
}

// PredictProbaGroupedReference is the naive twin of
// PredictProbaGrouped; the optimized version is bit-identical to it.
func (m *LogReg) PredictProbaGroupedReference(d *GroupedDesign) ([]float64, error) {
	if !m.fitted {
		return nil, ErrNotFitted
	}
	if err := d.validate(); err != nil {
		return nil, err
	}
	bcols, scols := d.BaseCols(), d.SharedCols()
	if bcols+scols != len(m.weights) {
		return nil, fmt.Errorf("%w: design has %d columns, model was fitted on %d", ErrShape, bcols+scols, len(m.weights))
	}
	mean, scale := m.std.Mean, m.std.Scale
	sdot := make([]float64, len(d.Shared))
	for r, row := range d.Shared {
		var s float64
		for j, v := range row {
			s += m.weights[bcols+j] * ((v - mean[bcols+j]) / scale[bcols+j])
		}
		sdot[r] = s
	}
	out := make([]float64, d.Rows())
	for i := range out {
		var u float64
		for j, v := range d.Base[i] {
			u += m.weights[j] * ((v - mean[j]) / scale[j])
		}
		out[i] = sigmoid(u + sdot[d.Group[i]] + m.bias)
	}
	return out, nil
}
