package ml

import (
	"errors"
	"fmt"

	"fairindex/internal/binenc"
)

// Serialization errors.
var (
	// ErrSerialize reports a model that cannot be exported (unknown
	// family or not fitted).
	ErrSerialize = errors.New("ml: cannot serialize model")
	// ErrDeserialize reports corrupt or unsupported model bytes.
	ErrDeserialize = errors.New("ml: cannot deserialize model")
)

// Model family tags used in the binary encoding. Tags are part of the
// on-disk format: never renumber, only append.
const (
	tagLogReg     = 1
	tagTree       = 2
	tagGaussianNB = 3
	tagCalibrated = 4
	tagPlatt      = 5
	tagIsotonic   = 6
)

// MarshalClassifier exports a fitted classifier's parameters in the
// library's compact binary encoding. Floats keep their exact bits, so
// an unmarshaled model reproduces identical scores. Only fitted
// models of the built-in families can be exported.
func MarshalClassifier(c Classifier) ([]byte, error) {
	return appendClassifier(nil, c)
}

// appendClassifier appends the tagged encoding of c.
func appendClassifier(b []byte, c Classifier) ([]byte, error) {
	switch m := c.(type) {
	case *LogReg:
		if !m.fitted {
			return nil, fmt.Errorf("%w: %s: %v", ErrSerialize, m.Name(), ErrNotFitted)
		}
		b = binenc.AppendUvarint(b, tagLogReg)
		b = binenc.AppendFloat64(b, m.LearningRate)
		b = binenc.AppendVarint(b, int64(m.Epochs))
		b = binenc.AppendFloat64(b, m.L2)
		b = binenc.AppendFloat64s(b, m.std.Mean)
		b = binenc.AppendFloat64s(b, m.std.Scale)
		b = binenc.AppendFloat64s(b, m.weights)
		b = binenc.AppendFloat64(b, m.bias)
		return b, nil

	case *DecisionTree:
		if !m.fitted {
			return nil, fmt.Errorf("%w: %s: %v", ErrSerialize, m.Name(), ErrNotFitted)
		}
		b = binenc.AppendUvarint(b, tagTree)
		b = binenc.AppendVarint(b, int64(m.MaxDepth))
		b = binenc.AppendFloat64(b, m.MinLeafWeight)
		b = binenc.AppendVarint(b, int64(m.nCols))
		b = binenc.AppendFloat64s(b, m.imp)
		return appendTreeNode(b, m.root), nil

	case *GaussianNB:
		if !m.fitted {
			return nil, fmt.Errorf("%w: %s: %v", ErrSerialize, m.Name(), ErrNotFitted)
		}
		b = binenc.AppendUvarint(b, tagGaussianNB)
		b = binenc.AppendFloat64(b, m.VarSmoothing)
		b = binenc.AppendVarint(b, int64(m.nCols))
		b = binenc.AppendFloat64(b, m.prior[0])
		b = binenc.AppendFloat64(b, m.prior[1])
		for c := 0; c < 2; c++ {
			b = binenc.AppendFloat64s(b, m.mean[c])
			b = binenc.AppendFloat64s(b, m.vari[c])
		}
		return b, nil

	case *CalibratedClassifier:
		if !m.fitted {
			return nil, fmt.Errorf("%w: %s: %v", ErrSerialize, m.Name(), ErrNotFitted)
		}
		b = binenc.AppendUvarint(b, tagCalibrated)
		inner, err := appendClassifier(nil, m.Base)
		if err != nil {
			return nil, err
		}
		b = binenc.AppendBytes(b, inner)
		return appendPlatt(b, m.platt)
	}
	return nil, fmt.Errorf("%w: unsupported classifier %T", ErrSerialize, c)
}

// appendTreeNode appends a preorder encoding of the subtree: a leaf
// flag, then either the leaf probability or the split and children.
func appendTreeNode(b []byte, n *treeNode) []byte {
	if n.left == nil {
		b = binenc.AppendBool(b, true)
		return binenc.AppendFloat64(b, n.prob)
	}
	b = binenc.AppendBool(b, false)
	b = binenc.AppendVarint(b, int64(n.col))
	b = binenc.AppendFloat64(b, n.threshold)
	b = appendTreeNode(b, n.left)
	return appendTreeNode(b, n.right)
}

// appendPlatt appends the tagged encoding of a fitted Platt scaler.
func appendPlatt(b []byte, p *Platt) ([]byte, error) {
	if !p.fitted {
		return nil, fmt.Errorf("%w: platt: %v", ErrSerialize, ErrNotFitted)
	}
	b = binenc.AppendUvarint(b, tagPlatt)
	b = binenc.AppendVarint(b, int64(p.MaxIter))
	b = binenc.AppendFloat64(b, p.LearningRate)
	b = binenc.AppendFloat64(b, p.a)
	b = binenc.AppendFloat64(b, p.b)
	return b, nil
}

// UnmarshalClassifier reconstructs a classifier exported by
// MarshalClassifier. The returned model is fitted and ready for
// PredictProba.
func UnmarshalClassifier(data []byte) (Classifier, error) {
	r := binenc.NewReader(data)
	c, err := readClassifier(r)
	if err != nil {
		return nil, err
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDeserialize, err)
	}
	return c, nil
}

// readClassifier decodes one tagged classifier from r.
func readClassifier(r *binenc.Reader) (Classifier, error) {
	tag := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDeserialize, err)
	}
	switch tag {
	case tagLogReg:
		m := NewLogReg()
		m.LearningRate = r.Float64()
		m.Epochs = r.Int()
		m.L2 = r.Float64()
		m.std = &Standardizer{Mean: r.Float64s(), Scale: r.Float64s()}
		m.weights = r.Float64s()
		m.bias = r.Float64()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("%w: logreg: %v", ErrDeserialize, err)
		}
		if len(m.std.Mean) != len(m.weights) || len(m.std.Scale) != len(m.weights) || len(m.weights) == 0 {
			return nil, fmt.Errorf("%w: logreg: inconsistent parameter shapes", ErrDeserialize)
		}
		m.fitted = true
		return m, nil

	case tagTree:
		m := NewDecisionTree()
		m.MaxDepth = r.Int()
		m.MinLeafWeight = r.Float64()
		m.nCols = r.Int()
		m.imp = r.Float64s()
		root, err := readTreeNode(r, 0)
		if err != nil {
			return nil, err
		}
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("%w: dtree: %v", ErrDeserialize, err)
		}
		if m.nCols <= 0 {
			return nil, fmt.Errorf("%w: dtree: non-positive column count", ErrDeserialize)
		}
		m.root = root
		m.fitted = true
		return m, nil

	case tagGaussianNB:
		m := NewGaussianNB()
		m.VarSmoothing = r.Float64()
		m.nCols = r.Int()
		m.prior[0] = r.Float64()
		m.prior[1] = r.Float64()
		for c := 0; c < 2; c++ {
			m.mean[c] = r.Float64s()
			m.vari[c] = r.Float64s()
		}
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("%w: naivebayes: %v", ErrDeserialize, err)
		}
		for c := 0; c < 2; c++ {
			if len(m.mean[c]) != m.nCols || len(m.vari[c]) != m.nCols {
				return nil, fmt.Errorf("%w: naivebayes: inconsistent parameter shapes", ErrDeserialize)
			}
		}
		m.fitted = true
		return m, nil

	case tagCalibrated:
		inner := r.Bytes()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("%w: calibrated: %v", ErrDeserialize, err)
		}
		base, err := UnmarshalClassifier(inner)
		if err != nil {
			return nil, err
		}
		cal, err := readCalibrator(r)
		if err != nil {
			return nil, err
		}
		platt, ok := cal.(*Platt)
		if !ok {
			return nil, fmt.Errorf("%w: calibrated: wrapper must be platt, got %T", ErrDeserialize, cal)
		}
		m := NewCalibrated(base)
		m.platt = platt
		m.fitted = true
		return m, nil
	}
	return nil, fmt.Errorf("%w: unknown model tag %d", ErrDeserialize, tag)
}

// maxTreeDecodeDepth bounds recursion while decoding tree bytes so
// corrupt input cannot overflow the stack.
const maxTreeDecodeDepth = 64

// readTreeNode decodes one preorder-encoded subtree.
func readTreeNode(r *binenc.Reader, depth int) (*treeNode, error) {
	if depth > maxTreeDecodeDepth {
		return nil, fmt.Errorf("%w: dtree deeper than %d", ErrDeserialize, maxTreeDecodeDepth)
	}
	if r.Bool() {
		return &treeNode{prob: r.Float64()}, nil
	}
	n := &treeNode{col: r.Int(), threshold: r.Float64()}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: dtree node: %v", ErrDeserialize, err)
	}
	var err error
	if n.left, err = readTreeNode(r, depth+1); err != nil {
		return nil, err
	}
	if n.right, err = readTreeNode(r, depth+1); err != nil {
		return nil, err
	}
	return n, nil
}

// MarshalCalibrator exports a fitted score calibrator (Platt or
// isotonic) in the same tagged encoding as MarshalClassifier.
func MarshalCalibrator(c ScoreCalibrator) ([]byte, error) {
	switch cal := c.(type) {
	case *Platt:
		return appendPlatt(nil, cal)
	case *Isotonic:
		if !cal.fitted {
			return nil, fmt.Errorf("%w: isotonic: %v", ErrSerialize, ErrNotFitted)
		}
		b := binenc.AppendUvarint(nil, tagIsotonic)
		b = binenc.AppendFloat64s(b, cal.breakpoints)
		b = binenc.AppendFloat64s(b, cal.values)
		return b, nil
	}
	return nil, fmt.Errorf("%w: unsupported calibrator %T", ErrSerialize, c)
}

// UnmarshalCalibrator reconstructs a calibrator exported by
// MarshalCalibrator.
func UnmarshalCalibrator(data []byte) (ScoreCalibrator, error) {
	r := binenc.NewReader(data)
	c, err := readCalibrator(r)
	if err != nil {
		return nil, err
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDeserialize, err)
	}
	return c, nil
}

// readCalibrator decodes one tagged calibrator from r.
func readCalibrator(r *binenc.Reader) (ScoreCalibrator, error) {
	tag := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDeserialize, err)
	}
	switch tag {
	case tagPlatt:
		p := NewPlatt()
		p.MaxIter = r.Int()
		p.LearningRate = r.Float64()
		p.a = r.Float64()
		p.b = r.Float64()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("%w: platt: %v", ErrDeserialize, err)
		}
		p.fitted = true
		return p, nil
	case tagIsotonic:
		iso := NewIsotonic()
		iso.breakpoints = r.Float64s()
		iso.values = r.Float64s()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("%w: isotonic: %v", ErrDeserialize, err)
		}
		if len(iso.breakpoints) == 0 || len(iso.breakpoints) != len(iso.values) {
			return nil, fmt.Errorf("%w: isotonic: inconsistent step function", ErrDeserialize)
		}
		iso.fitted = true
		return iso, nil
	}
	return nil, fmt.Errorf("%w: unknown calibrator tag %d", ErrDeserialize, tag)
}
