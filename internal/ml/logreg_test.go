package ml

import (
	"math"
	"testing"
)

func TestLogRegCalibratedOnTrain(t *testing.T) {
	// A converged unregularized logistic regression satisfies
	// Σ(s−y) ≈ 0 on its training data (first-order condition of the
	// intercept). This near-zero overall deviation is the phenomenon
	// §5.2 exploits: globally calibrated, locally not.
	X, y := noisyData(400, 11)
	m := NewLogReg()
	m.Epochs = 2000
	m.L2 = 0
	if err := m.Fit(X, y, nil); err != nil {
		t.Fatal(err)
	}
	scores, err := m.PredictProba(X)
	if err != nil {
		t.Fatal(err)
	}
	var dev float64
	for i, s := range scores {
		dev += s - float64(y[i])
	}
	if math.Abs(dev)/float64(len(y)) > 0.01 {
		t.Errorf("mean training deviation = %v, want ≈ 0", dev/float64(len(y)))
	}
}

func TestLogRegHyperparameterValidation(t *testing.T) {
	X, y := separableData(10, 1)
	m := NewLogReg()
	m.Epochs = 0
	if err := m.Fit(X, y, nil); err == nil {
		t.Error("expected error for zero epochs")
	}
	m = NewLogReg()
	m.LearningRate = -1
	if err := m.Fit(X, y, nil); err == nil {
		t.Error("expected error for negative learning rate")
	}
}

func TestLogRegCoefficients(t *testing.T) {
	m := NewLogReg()
	if _, _, err := m.Coefficients(); err == nil {
		t.Error("expected ErrNotFitted")
	}
	X, y := separableData(100, 7)
	if err := m.Fit(X, y, nil); err != nil {
		t.Fatal(err)
	}
	w, _, err := m.Coefficients()
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 2 {
		t.Fatalf("got %d coefficients, want 2", len(w))
	}
	// Both features point toward class 1 in the fixture.
	if w[0] <= 0 || w[1] <= 0 {
		t.Errorf("coefficients = %v, want both positive", w)
	}
	// Mutating the returned slice must not affect the model.
	w[0] = 999
	w2, _, _ := m.Coefficients()
	if w2[0] == 999 {
		t.Error("Coefficients returned internal state")
	}
}

func TestLogRegFeatureImportance(t *testing.T) {
	m := NewLogReg()
	if imp := m.FeatureImportance(); imp != nil {
		t.Error("unfitted importance should be nil")
	}
	// x1 carries all the signal; x2 is noise.
	X, y := separableData(200, 8)
	for i := range X {
		X[i][1] = float64(i%7) - 3 // decorrelate feature 2 from labels
	}
	if err := m.Fit(X, y, nil); err != nil {
		t.Fatal(err)
	}
	imp := m.FeatureImportance()
	if len(imp) != 2 {
		t.Fatalf("importance length = %d", len(imp))
	}
	var sum float64
	for _, v := range imp {
		if v < 0 {
			t.Errorf("negative importance %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importances sum to %v, want 1", sum)
	}
	if imp[0] < imp[1] {
		t.Errorf("signal feature importance %v < noise feature %v", imp[0], imp[1])
	}
}

func TestLogRegConstantColumn(t *testing.T) {
	// A constant column must not produce NaNs.
	X := [][]float64{{1, 5}, {2, 5}, {3, 5}, {4, 5}}
	y := []int{0, 0, 1, 1}
	m := NewLogReg()
	if err := m.Fit(X, y, nil); err != nil {
		t.Fatal(err)
	}
	scores, err := m.PredictProba(X)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scores {
		if math.IsNaN(s) {
			t.Fatal("NaN score with constant column")
		}
	}
}

func TestSigmoidStability(t *testing.T) {
	tests := []struct {
		z    float64
		want float64
	}{
		{0, 0.5},
		{1000, 1},
		{-1000, 0},
	}
	for _, tt := range tests {
		got := sigmoid(tt.z)
		if math.IsNaN(got) || math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("sigmoid(%v) = %v, want %v", tt.z, got, tt.want)
		}
	}
	// Symmetry: sigmoid(z) + sigmoid(-z) == 1.
	for _, z := range []float64{0.1, 1, 5, 37} {
		if s := sigmoid(z) + sigmoid(-z); math.Abs(s-1) > 1e-12 {
			t.Errorf("sigmoid(%v)+sigmoid(-%v) = %v, want 1", z, z, s)
		}
	}
}

func TestStandardizer(t *testing.T) {
	X := [][]float64{{1, 10}, {3, 10}, {5, 10}}
	w := []float64{1, 1, 1}
	s, err := FitStandardizer(X, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Mean[0]-3) > 1e-12 {
		t.Errorf("mean = %v, want 3", s.Mean[0])
	}
	// Constant column keeps scale 1.
	if s.Scale[1] != 1 {
		t.Errorf("constant column scale = %v, want 1", s.Scale[1])
	}
	Z := s.Transform(X)
	var mean float64
	for _, row := range Z {
		mean += row[0]
	}
	if math.Abs(mean) > 1e-12 {
		t.Errorf("standardized column mean = %v, want 0", mean/3)
	}
	if Z[0][1] != 0 {
		t.Errorf("constant column should be centered to 0, got %v", Z[0][1])
	}
}

func TestStandardizerWeighted(t *testing.T) {
	// Weight 3 on the value 10 pulls the mean toward it.
	X := [][]float64{{0}, {10}}
	s, err := FitStandardizer(X, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Mean[0]-7.5) > 1e-12 {
		t.Errorf("weighted mean = %v, want 7.5", s.Mean[0])
	}
}

func TestStandardizerErrors(t *testing.T) {
	if _, err := FitStandardizer(nil, nil); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := FitStandardizer([][]float64{{1}, {1, 2}}, []float64{1, 1}); err == nil {
		t.Error("expected error for ragged input")
	}
	if _, err := FitStandardizer([][]float64{{1}}, []float64{0}); err == nil {
		t.Error("expected error for zero weight sum")
	}
}
