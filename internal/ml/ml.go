// Package ml implements the machine-learning substrate the paper
// trains on: binary classifiers producing confidence scores in [0,1]
// (logistic regression, CART decision tree, Gaussian naive Bayes —
// the three model families of §5.3.1), all supporting per-instance
// sample weights so the reweighting baseline (§5.1) can be expressed,
// plus accuracy metrics and feature standardization.
//
// All classifiers are deterministic for fixed inputs; there is no
// hidden randomness.
package ml

import (
	"errors"
	"fmt"
)

// Classifier is a binary classifier trained on a design matrix. The
// confidence scores returned by PredictProba estimate
// P(y = 1 | x) and always lie in [0, 1].
type Classifier interface {
	// Fit trains on rows X with labels y (0/1). w holds optional
	// per-instance sample weights; nil means uniform. Fit must be
	// callable repeatedly; each call discards previous state.
	Fit(X [][]float64, y []int, w []float64) error
	// PredictProba returns a confidence score per row of X.
	PredictProba(X [][]float64) ([]float64, error)
	// Name identifies the model family, e.g. "logreg".
	Name() string
}

// ScoreCalibrator is a one-dimensional score→probability calibrator
// (Platt scaling or isotonic regression). It is the shared surface of
// the post-processing mitigation family.
type ScoreCalibrator interface {
	// Fit learns the mapping from raw scores and labels, optionally
	// weighted (nil = uniform).
	Fit(scores []float64, labels []int, w []float64) error
	// Apply maps raw scores to calibrated probabilities.
	Apply(scores []float64) ([]float64, error)
}

// FeatureImporter is implemented by classifiers that can attribute
// their decisions to input columns (used by the Figure 9 heatmaps).
// Importances are non-negative and sum to 1 (or are all zero for a
// degenerate fit).
type FeatureImporter interface {
	FeatureImportance() []float64
}

// Common training errors.
var (
	ErrNoData     = errors.New("ml: empty training set")
	ErrShape      = errors.New("ml: inconsistent matrix shape")
	ErrNotFitted  = errors.New("ml: classifier is not fitted")
	ErrBadWeights = errors.New("ml: invalid sample weights")
)

// validateFit checks the shared Fit preconditions and returns the
// effective weight slice (uniform if w is nil).
func validateFit(X [][]float64, y []int, w []float64) ([]float64, error) {
	if len(X) == 0 {
		return nil, ErrNoData
	}
	if len(y) != len(X) {
		return nil, fmt.Errorf("%w: %d rows vs %d labels", ErrShape, len(X), len(y))
	}
	cols := len(X[0])
	if cols == 0 {
		return nil, fmt.Errorf("%w: rows have no columns", ErrShape)
	}
	for i, row := range X {
		if len(row) != cols {
			return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrShape, i, len(row), cols)
		}
	}
	if w == nil {
		w = make([]float64, len(X))
		for i := range w {
			w[i] = 1
		}
		return w, nil
	}
	if len(w) != len(X) {
		return nil, fmt.Errorf("%w: %d weights for %d rows", ErrBadWeights, len(w), len(X))
	}
	var total float64
	for i, wi := range w {
		if wi < 0 {
			return nil, fmt.Errorf("%w: negative weight %v at row %d", ErrBadWeights, wi, i)
		}
		total += wi
	}
	if total <= 0 {
		return nil, fmt.Errorf("%w: weights sum to %v", ErrBadWeights, total)
	}
	return w, nil
}

// validatePredict checks the shared PredictProba preconditions.
func validatePredict(X [][]float64, wantCols int) error {
	for i, row := range X {
		if len(row) != wantCols {
			return fmt.Errorf("%w: row %d has %d columns, model was fitted on %d", ErrShape, i, len(row), wantCols)
		}
	}
	return nil
}

// label01 normalizes a label to {0,1}.
func label01(y int) float64 {
	if y != 0 {
		return 1
	}
	return 0
}
