package ml

import (
	"fmt"
	"sort"
)

// DefaultThreshold converts confidence scores to hard labels.
const DefaultThreshold = 0.5

// Accuracy returns the fraction of instances whose thresholded score
// matches the label.
func Accuracy(scores []float64, y []int, threshold float64) (float64, error) {
	if len(scores) != len(y) {
		return 0, fmt.Errorf("%w: %d scores vs %d labels", ErrShape, len(scores), len(y))
	}
	if len(scores) == 0 {
		return 0, nil
	}
	correct := 0
	for i, s := range scores {
		pred := 0.0
		if s >= threshold {
			pred = 1
		}
		if pred == label01(y[i]) {
			correct++
		}
	}
	return float64(correct) / float64(len(scores)), nil
}

// AUC returns the area under the ROC curve via the rank statistic
// (probability a random positive outranks a random negative; ties
// count half). Returns 0.5 when either class is absent.
func AUC(scores []float64, y []int) (float64, error) {
	if len(scores) != len(y) {
		return 0, fmt.Errorf("%w: %d scores vs %d labels", ErrShape, len(scores), len(y))
	}
	type pair struct {
		s float64
		y float64
	}
	ps := make([]pair, len(scores))
	var nPos, nNeg float64
	for i := range scores {
		ps[i] = pair{scores[i], label01(y[i])}
		if ps[i].y == 1 {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5, nil
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].s < ps[b].s })
	// Average ranks with tie handling.
	var rankSumPos float64
	i := 0
	for i < len(ps) {
		j := i
		for j < len(ps) && ps[j].s == ps[i].s {
			j++
		}
		avgRank := float64(i+j+1) / 2 // ranks are 1-based
		for k := i; k < j; k++ {
			if ps[k].y == 1 {
				rankSumPos += avgRank
			}
		}
		i = j
	}
	return (rankSumPos - nPos*(nPos+1)/2) / (nPos * nNeg), nil
}

// ConfusionMatrix holds binary classification counts at a threshold.
type ConfusionMatrix struct {
	TP, FP, TN, FN int
}

// Confusion computes the confusion matrix at a threshold.
func Confusion(scores []float64, y []int, threshold float64) (ConfusionMatrix, error) {
	var cm ConfusionMatrix
	if len(scores) != len(y) {
		return cm, fmt.Errorf("%w: %d scores vs %d labels", ErrShape, len(scores), len(y))
	}
	for i, s := range scores {
		pred := s >= threshold
		pos := y[i] != 0
		switch {
		case pred && pos:
			cm.TP++
		case pred && !pos:
			cm.FP++
		case !pred && pos:
			cm.FN++
		default:
			cm.TN++
		}
	}
	return cm, nil
}

// Precision returns TP/(TP+FP), or 0 if no positive predictions.
func (cm ConfusionMatrix) Precision() float64 {
	if cm.TP+cm.FP == 0 {
		return 0
	}
	return float64(cm.TP) / float64(cm.TP+cm.FP)
}

// Recall returns TP/(TP+FN), or 0 if no positive instances.
func (cm ConfusionMatrix) Recall() float64 {
	if cm.TP+cm.FN == 0 {
		return 0
	}
	return float64(cm.TP) / float64(cm.TP+cm.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (cm ConfusionMatrix) F1() float64 {
	p, r := cm.Precision(), cm.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}
