package ml

import (
	"fmt"
	"sort"
)

// DecisionTree is a CART binary classification tree with weighted
// Gini impurity splits. Confidence scores are leaf positive-weight
// fractions, the standard (and typically miscalibrated) tree scoring
// the paper contrasts with logistic regression.
type DecisionTree struct {
	// MaxDepth bounds the tree depth (root = depth 0). MinLeafWeight
	// is the minimum total sample weight per leaf.
	MaxDepth      int
	MinLeafWeight float64

	root   *treeNode
	nCols  int
	imp    []float64 // accumulated impurity decrease per column
	fitted bool
}

// NewDecisionTree returns a tree with defaults suited to the
// paper-scale datasets.
func NewDecisionTree() *DecisionTree {
	return &DecisionTree{MaxDepth: 6, MinLeafWeight: 4}
}

// Name implements Classifier.
func (m *DecisionTree) Name() string { return "dtree" }

type treeNode struct {
	// Internal nodes.
	col       int
	threshold float64
	left      *treeNode
	right     *treeNode
	// Leaves (left == nil).
	prob float64
}

// Fit implements Classifier.
func (m *DecisionTree) Fit(X [][]float64, y []int, w []float64) error {
	w, err := validateFit(X, y, w)
	if err != nil {
		return err
	}
	if m.MaxDepth < 0 {
		return fmt.Errorf("ml: dtree MaxDepth must be >= 0, got %d", m.MaxDepth)
	}
	if m.MinLeafWeight <= 0 {
		return fmt.Errorf("ml: dtree MinLeafWeight must be positive, got %v", m.MinLeafWeight)
	}
	m.nCols = len(X[0])
	m.imp = make([]float64, m.nCols)
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	m.root = m.grow(X, y, w, idx, 0)
	m.fitted = true
	return nil
}

// grow recursively builds the tree over the rows in idx.
func (m *DecisionTree) grow(X [][]float64, y []int, w []float64, idx []int, depth int) *treeNode {
	var wSum, wPos float64
	for _, i := range idx {
		wSum += w[i]
		wPos += w[i] * label01(y[i])
	}
	leaf := &treeNode{prob: 0.5}
	if wSum > 0 {
		leaf.prob = wPos / wSum
	}
	if depth >= m.MaxDepth || wSum < 2*m.MinLeafWeight || leaf.prob == 0 || leaf.prob == 1 {
		return leaf
	}
	col, threshold, gain := m.bestSplit(X, y, w, idx, wSum, wPos)
	if col < 0 {
		return leaf
	}
	var lIdx, rIdx []int
	for _, i := range idx {
		if X[i][col] <= threshold {
			lIdx = append(lIdx, i)
		} else {
			rIdx = append(rIdx, i)
		}
	}
	if len(lIdx) == 0 || len(rIdx) == 0 {
		return leaf
	}
	m.imp[col] += gain
	return &treeNode{
		col:       col,
		threshold: threshold,
		left:      m.grow(X, y, w, lIdx, depth+1),
		right:     m.grow(X, y, w, rIdx, depth+1),
	}
}

// bestSplit scans every column for the weighted-Gini-optimal
// threshold. Returns col = -1 when no split improves impurity while
// respecting MinLeafWeight.
func (m *DecisionTree) bestSplit(X [][]float64, y []int, w []float64, idx []int, wSum, wPos float64) (col int, threshold, gain float64) {
	parentGini := giniImpurity(wPos, wSum)
	col = -1
	type entry struct {
		v    float64
		wt   float64
		wPos float64
	}
	entries := make([]entry, 0, len(idx))
	for c := 0; c < m.nCols; c++ {
		entries = entries[:0]
		for _, i := range idx {
			entries = append(entries, entry{v: X[i][c], wt: w[i], wPos: w[i] * label01(y[i])})
		}
		sort.Slice(entries, func(a, b int) bool { return entries[a].v < entries[b].v })
		var lW, lPos float64
		for k := 0; k < len(entries)-1; k++ {
			lW += entries[k].wt
			lPos += entries[k].wPos
			if entries[k].v == entries[k+1].v {
				continue // cannot split between equal values
			}
			rW := wSum - lW
			rPos := wPos - lPos
			if lW < m.MinLeafWeight || rW < m.MinLeafWeight {
				continue
			}
			g := parentGini - (lW*giniImpurity(lPos, lW)+rW*giniImpurity(rPos, rW))/wSum
			if g > gain+1e-15 {
				gain = g
				col = c
				threshold = (entries[k].v + entries[k+1].v) / 2
			}
		}
	}
	return col, threshold, gain
}

// giniImpurity returns the Gini impurity of a group with positive
// weight wPos out of total weight wSum.
func giniImpurity(wPos, wSum float64) float64 {
	if wSum <= 0 {
		return 0
	}
	p := wPos / wSum
	return 2 * p * (1 - p)
}

// PredictProba implements Classifier.
func (m *DecisionTree) PredictProba(X [][]float64) ([]float64, error) {
	if !m.fitted {
		return nil, ErrNotFitted
	}
	if err := validatePredict(X, m.nCols); err != nil {
		return nil, err
	}
	out := make([]float64, len(X))
	for i, row := range X {
		n := m.root
		for n.left != nil {
			if row[n.col] <= n.threshold {
				n = n.left
			} else {
				n = n.right
			}
		}
		out[i] = n.prob
	}
	return out, nil
}

// FeatureImportance implements FeatureImporter: normalized total
// Gini impurity decrease contributed by each column.
func (m *DecisionTree) FeatureImportance() []float64 {
	if !m.fitted {
		return nil
	}
	imp := make([]float64, len(m.imp))
	var total float64
	for j, v := range m.imp {
		imp[j] = v
		total += v
	}
	if total > 0 {
		for j := range imp {
			imp[j] /= total
		}
	}
	return imp
}

// Depth returns the fitted tree's depth (0 for a single leaf).
func (m *DecisionTree) Depth() int {
	if !m.fitted {
		return 0
	}
	var walk func(n *treeNode) int
	walk = func(n *treeNode) int {
		if n.left == nil {
			return 0
		}
		l, r := walk(n.left), walk(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(m.root)
}
