package ml

import (
	"fmt"
	"math"
)

// LogReg is an L2-regularized logistic regression trained by
// full-batch gradient descent on internally standardized features.
// The zero value is not usable; construct with NewLogReg.
//
// Logistic regression is the paper's primary classifier (§5.3.2):
// trained to convergence it is nearly calibrated on its training
// distribution overall, which is exactly the regime in which
// per-neighborhood miscalibration (Figure 6) is interesting.
type LogReg struct {
	// Hyperparameters; changing them after Fit has no effect until the
	// next Fit.
	LearningRate float64
	Epochs       int
	L2           float64

	// Workers bounds the goroutines used for the per-row forward
	// passes of Fit, FitGrouped and the PredictProba variants (<= 1 =
	// single-threaded). Results are bit-identical for any value: rows
	// are scored independently into a predictions buffer and every
	// order-sensitive accumulation (gradients, weight totals) stays
	// sequential in row order. Not part of the model; not serialized.
	Workers int

	std     *Standardizer
	weights []float64
	bias    float64
	fitted  bool
}

// NewLogReg returns a logistic regression with defaults tuned for the
// paper-scale datasets (~10³ records, ≤ ~10³ columns).
func NewLogReg() *LogReg {
	return &LogReg{LearningRate: 0.5, Epochs: 300, L2: 1e-4}
}

// Name implements Classifier.
func (m *LogReg) Name() string { return "logreg" }

// Fit implements Classifier. The dense training loop is bit-identical
// to FitReference (the retained naive implementation): the scratch
// pooling, the flat standardized matrix and the optionally parallel
// forward pass change where intermediate values live, never the
// floating-point operations or their order.
func (m *LogReg) Fit(X [][]float64, y []int, w []float64) error {
	cols, err := checkMatrix(X, y)
	if err != nil {
		return err
	}
	sc := scratchPool.Get().(*fitScratch)
	defer scratchPool.Put(sc)
	w, err = effectiveWeights(len(X), w, sc)
	if err != nil {
		return err
	}
	if m.Epochs <= 0 || m.LearningRate <= 0 {
		return fmt.Errorf("ml: logreg needs positive epochs and learning rate, got %d and %v", m.Epochs, m.LearningRate)
	}
	m.std, err = FitStandardizer(X, w)
	if err != nil {
		return err
	}
	n := len(X)

	// Standardize once into a flat row-major matrix (same values the
	// reference's Transform produces, without the per-row allocations).
	z := grown(sc.zdense, n*cols)
	sc.zdense = z
	mean, scale := m.std.Mean, m.std.Scale
	for i, row := range X {
		off := i * cols
		for j, v := range row {
			z[off+j] = (v - mean[j]) / scale[j]
		}
	}

	var totalW float64
	for _, wi := range w {
		totalW += wi
	}

	m.weights = make([]float64, cols)
	m.bias = 0
	grad := grown(sc.grad, cols)
	sc.grad = grad
	preds := grown(sc.preds, n)
	sc.preds = preds

	for epoch := 0; epoch < m.Epochs; epoch++ {
		// Forward pass: rows are independent given the epoch's weights,
		// so chunks may run on separate goroutines.
		parallelRows(n, m.Workers, func(lo, hi int) {
			wt, bias := m.weights, m.bias
			for i := lo; i < hi; i++ {
				row := z[i*cols : i*cols+cols]
				var u float64
				for j, v := range row {
					u += wt[j] * v
				}
				preds[i] = sigmoid(u + bias)
			}
		})
		// Gradient accumulation: strictly sequential in row order — the
		// summation order defines the result bits.
		for j := range grad {
			grad[j] = 0
		}
		var gradB float64
		for i := 0; i < n; i++ {
			g := w[i] * (preds[i] - label01(y[i]))
			row := z[i*cols : i*cols+cols]
			for j, v := range row {
				grad[j] += g * v
			}
			gradB += g
		}
		inv := 1 / totalW
		for j := 0; j < cols; j++ {
			m.weights[j] -= m.LearningRate * (grad[j]*inv + m.L2*m.weights[j])
		}
		m.bias -= m.LearningRate * gradB * inv
	}
	m.fitted = true
	return nil
}

// PredictProba implements Classifier. Standardization is fused into
// the dot product — (v−μ)/σ is rounded to float64 either way, so the
// scores are bit-identical to transforming first (PredictProbaReference)
// while allocating only the output slice.
func (m *LogReg) PredictProba(X [][]float64) ([]float64, error) {
	if !m.fitted {
		return nil, ErrNotFitted
	}
	if err := validatePredict(X, len(m.weights)); err != nil {
		return nil, err
	}
	out := make([]float64, len(X))
	mean, scale := m.std.Mean, m.std.Scale
	parallelRows(len(X), m.Workers, func(lo, hi int) {
		wt, bias := m.weights, m.bias
		for i := lo; i < hi; i++ {
			var u float64
			for j, v := range X[i] {
				u += wt[j] * ((v - mean[j]) / scale[j])
			}
			out[i] = sigmoid(u + bias)
		}
	})
	return out, nil
}

// FeatureImportance implements FeatureImporter: normalized |weight|
// on the standardized scale, so columns are directly comparable.
func (m *LogReg) FeatureImportance() []float64 {
	if !m.fitted {
		return nil
	}
	imp := make([]float64, len(m.weights))
	var total float64
	for j, wj := range m.weights {
		imp[j] = math.Abs(wj)
		total += imp[j]
	}
	if total > 0 {
		for j := range imp {
			imp[j] /= total
		}
	}
	return imp
}

// Coefficients returns a copy of the fitted weights (standardized
// scale) and the intercept. Returns an error before Fit.
func (m *LogReg) Coefficients() ([]float64, float64, error) {
	if !m.fitted {
		return nil, 0, ErrNotFitted
	}
	return append([]float64(nil), m.weights...), m.bias, nil
}

func sigmoid(z float64) float64 {
	// Split to stay numerically stable for large |z|.
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
