package ml

import (
	"fmt"
	"math"
)

// LogReg is an L2-regularized logistic regression trained by
// full-batch gradient descent on internally standardized features.
// The zero value is not usable; construct with NewLogReg.
//
// Logistic regression is the paper's primary classifier (§5.3.2):
// trained to convergence it is nearly calibrated on its training
// distribution overall, which is exactly the regime in which
// per-neighborhood miscalibration (Figure 6) is interesting.
type LogReg struct {
	// Hyperparameters; changing them after Fit has no effect until the
	// next Fit.
	LearningRate float64
	Epochs       int
	L2           float64

	std     *Standardizer
	weights []float64
	bias    float64
	fitted  bool
}

// NewLogReg returns a logistic regression with defaults tuned for the
// paper-scale datasets (~10³ records, ≤ ~10³ columns).
func NewLogReg() *LogReg {
	return &LogReg{LearningRate: 0.5, Epochs: 300, L2: 1e-4}
}

// Name implements Classifier.
func (m *LogReg) Name() string { return "logreg" }

// Fit implements Classifier.
func (m *LogReg) Fit(X [][]float64, y []int, w []float64) error {
	w, err := validateFit(X, y, w)
	if err != nil {
		return err
	}
	if m.Epochs <= 0 || m.LearningRate <= 0 {
		return fmt.Errorf("ml: logreg needs positive epochs and learning rate, got %d and %v", m.Epochs, m.LearningRate)
	}
	m.std, err = FitStandardizer(X, w)
	if err != nil {
		return err
	}
	Z := m.std.Transform(X)
	n, cols := len(Z), len(Z[0])

	var totalW float64
	for _, wi := range w {
		totalW += wi
	}

	m.weights = make([]float64, cols)
	m.bias = 0
	grad := make([]float64, cols)

	for epoch := 0; epoch < m.Epochs; epoch++ {
		for j := range grad {
			grad[j] = 0
		}
		var gradB float64
		for i := 0; i < n; i++ {
			p := sigmoid(dot(m.weights, Z[i]) + m.bias)
			g := w[i] * (p - label01(y[i]))
			row := Z[i]
			for j := 0; j < cols; j++ {
				grad[j] += g * row[j]
			}
			gradB += g
		}
		inv := 1 / totalW
		for j := 0; j < cols; j++ {
			m.weights[j] -= m.LearningRate * (grad[j]*inv + m.L2*m.weights[j])
		}
		m.bias -= m.LearningRate * gradB * inv
	}
	m.fitted = true
	return nil
}

// PredictProba implements Classifier.
func (m *LogReg) PredictProba(X [][]float64) ([]float64, error) {
	if !m.fitted {
		return nil, ErrNotFitted
	}
	if err := validatePredict(X, len(m.weights)); err != nil {
		return nil, err
	}
	Z := m.std.Transform(X)
	out := make([]float64, len(Z))
	for i, row := range Z {
		out[i] = sigmoid(dot(m.weights, row) + m.bias)
	}
	return out, nil
}

// FeatureImportance implements FeatureImporter: normalized |weight|
// on the standardized scale, so columns are directly comparable.
func (m *LogReg) FeatureImportance() []float64 {
	if !m.fitted {
		return nil
	}
	imp := make([]float64, len(m.weights))
	var total float64
	for j, wj := range m.weights {
		imp[j] = math.Abs(wj)
		total += imp[j]
	}
	if total > 0 {
		for j := range imp {
			imp[j] /= total
		}
	}
	return imp
}

// Coefficients returns a copy of the fitted weights (standardized
// scale) and the intercept. Returns an error before Fit.
func (m *LogReg) Coefficients() ([]float64, float64, error) {
	if !m.fitted {
		return nil, 0, ErrNotFitted
	}
	return append([]float64(nil), m.weights...), m.bias, nil
}

func sigmoid(z float64) float64 {
	// Split to stay numerically stable for large |z|.
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
