package ml

import (
	"math"
	"testing"
)

func TestTreeLearnsAxisAlignedConcept(t *testing.T) {
	// Label = x0 > 0.5, trivially learnable by one split.
	var X [][]float64
	var y []int
	for i := 0; i < 100; i++ {
		v := float64(i) / 100
		X = append(X, []float64{v, 0.3})
		if v > 0.5 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	m := NewDecisionTree()
	if err := m.Fit(X, y, nil); err != nil {
		t.Fatal(err)
	}
	scores, err := m.PredictProba(X)
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := Accuracy(scores, y, 0.5)
	if acc != 1 {
		t.Errorf("accuracy = %v, want 1 on an axis-aligned concept", acc)
	}
	if d := m.Depth(); d < 1 {
		t.Errorf("depth = %d, want >= 1", d)
	}
}

func TestTreeHyperparameterValidation(t *testing.T) {
	X, y := separableData(10, 1)
	m := NewDecisionTree()
	m.MaxDepth = -1
	if err := m.Fit(X, y, nil); err == nil {
		t.Error("expected error for negative MaxDepth")
	}
	m = NewDecisionTree()
	m.MinLeafWeight = 0
	if err := m.Fit(X, y, nil); err == nil {
		t.Error("expected error for zero MinLeafWeight")
	}
}

func TestTreeMaxDepthZeroIsPrior(t *testing.T) {
	X, y := separableData(50, 2)
	m := NewDecisionTree()
	m.MaxDepth = 0
	if err := m.Fit(X, y, nil); err != nil {
		t.Fatal(err)
	}
	scores, err := m.PredictProba(X)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for _, yi := range y {
		want += float64(yi)
	}
	want /= float64(len(y))
	for _, s := range scores {
		if math.Abs(s-want) > 1e-12 {
			t.Fatalf("depth-0 score = %v, want prior %v", s, want)
		}
	}
	if m.Depth() != 0 {
		t.Errorf("Depth = %d, want 0", m.Depth())
	}
}

func TestTreeDepthRespected(t *testing.T) {
	X, y := noisyData(300, 3)
	for _, depth := range []int{1, 2, 3, 4} {
		m := NewDecisionTree()
		m.MaxDepth = depth
		m.MinLeafWeight = 1
		if err := m.Fit(X, y, nil); err != nil {
			t.Fatal(err)
		}
		if got := m.Depth(); got > depth {
			t.Errorf("fitted depth %d exceeds MaxDepth %d", got, depth)
		}
	}
}

func TestTreeConstantFeatures(t *testing.T) {
	// No split possible: every row identical. Must yield the prior.
	X := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	y := []int{1, 0, 1, 1}
	m := NewDecisionTree()
	if err := m.Fit(X, y, nil); err != nil {
		t.Fatal(err)
	}
	scores, err := m.PredictProba(X)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scores {
		if math.Abs(s-0.75) > 1e-12 {
			t.Errorf("score = %v, want 0.75", s)
		}
	}
}

func TestTreeFeatureImportance(t *testing.T) {
	m := NewDecisionTree()
	if m.FeatureImportance() != nil {
		t.Error("unfitted importance should be nil")
	}
	// Only x0 is predictive.
	var X [][]float64
	var y []int
	for i := 0; i < 200; i++ {
		v := float64(i%10) / 10
		noise := float64((i*7)%13) / 13
		X = append(X, []float64{v, noise})
		if v >= 0.5 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	if err := m.Fit(X, y, nil); err != nil {
		t.Fatal(err)
	}
	imp := m.FeatureImportance()
	var sum float64
	for _, v := range imp {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importances sum to %v", sum)
	}
	if imp[0] < 0.9 {
		t.Errorf("signal feature importance = %v, want >= 0.9", imp[0])
	}
}

func TestGiniImpurity(t *testing.T) {
	tests := []struct {
		pos, sum float64
		want     float64
	}{
		{0, 10, 0},
		{10, 10, 0},
		{5, 10, 0.5},
		{0, 0, 0},
	}
	for _, tt := range tests {
		if got := giniImpurity(tt.pos, tt.sum); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("gini(%v/%v) = %v, want %v", tt.pos, tt.sum, got, tt.want)
		}
	}
}

func TestTreeMinLeafWeightBlocksTinySplits(t *testing.T) {
	// With a huge MinLeafWeight the tree cannot split at all.
	X, y := separableData(20, 9)
	m := NewDecisionTree()
	m.MinLeafWeight = 1000
	if err := m.Fit(X, y, nil); err != nil {
		t.Fatal(err)
	}
	if m.Depth() != 0 {
		t.Errorf("depth = %d, want 0 with prohibitive MinLeafWeight", m.Depth())
	}
}
