package ml

import (
	"fmt"
	"sync"
)

// fitScratch holds the reusable buffers of the allocation-free
// training paths. One scratch serves one Fit/Predict call; the pool
// recycles it across calls — including the pipeline's repeated
// per-task and multi-objective runs — so steady-state training does
// not grow the heap with O(n·cols) garbage per call.
type fitScratch struct {
	zdense     []float64 // n×C standardized dense matrix, flat (dense path)
	zbase      []float64 // n×B standardized base block, flat (grouped path)
	zshared    []float64 // G×S standardized shared block, flat (grouped path)
	sharedDot  []float64 // G per-epoch shared-block partial dot products
	sharedGrad []float64 // G per-epoch gradient group sums
	preds      []float64 // n per-epoch predictions
	grad       []float64 // C gradient accumulator
	uniform    []float64 // n uniform weights when the caller passes nil
}

var scratchPool = sync.Pool{New: func() any { return new(fitScratch) }}

// grown returns buf resized to n, reusing its capacity when possible.
// Contents are unspecified; callers overwrite every element.
func grown(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// effectiveWeights validates w against n rows and returns the weight
// slice to train with. A nil w resolves to uniform weights drawn from
// the scratch (so the hot paths never allocate them); the returned
// slice must not outlive the scratch.
func effectiveWeights(n int, w []float64, sc *fitScratch) ([]float64, error) {
	if w == nil {
		sc.uniform = grown(sc.uniform, n)
		u := sc.uniform
		for i := range u {
			u[i] = 1
		}
		return u, nil
	}
	if len(w) != n {
		return nil, fmt.Errorf("%w: %d weights for %d rows", ErrBadWeights, len(w), n)
	}
	var total float64
	for i, wi := range w {
		if wi < 0 {
			return nil, fmt.Errorf("%w: negative weight %v at row %d", ErrBadWeights, wi, i)
		}
		total += wi
	}
	if total <= 0 {
		return nil, fmt.Errorf("%w: weights sum to %v", ErrBadWeights, total)
	}
	return w, nil
}

// checkMatrix checks the dense design-matrix preconditions shared by
// Fit (the weight handling lives in effectiveWeights).
func checkMatrix(X [][]float64, y []int) (cols int, err error) {
	if len(X) == 0 {
		return 0, ErrNoData
	}
	if len(y) != len(X) {
		return 0, fmt.Errorf("%w: %d rows vs %d labels", ErrShape, len(X), len(y))
	}
	cols = len(X[0])
	if cols == 0 {
		return 0, fmt.Errorf("%w: rows have no columns", ErrShape)
	}
	for i, row := range X {
		if len(row) != cols {
			return 0, fmt.Errorf("%w: row %d has %d columns, want %d", ErrShape, i, len(row), cols)
		}
	}
	return cols, nil
}

// parallelRows runs fn over [0, n) split into contiguous chunks on up
// to workers goroutines. fn(lo, hi) must only write state owned by
// rows [lo, hi), so the result is independent of the chunking — this
// is what keeps the parallel forward passes bit-identical to a
// sequential run. With workers <= 1 (or a small n) fn runs inline.
func parallelRows(n, workers int, fn func(lo, hi int)) {
	const minChunk = 1024
	if workers > n/minChunk {
		workers = n / minChunk
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
