package ml

import (
	"fmt"
	"sort"
)

// Isotonic is an isotonic-regression calibrator fitted with the
// pool-adjacent-violators (PAV) algorithm: a monotone step function
// mapping raw confidence scores to calibrated probabilities. It is
// the standard non-parametric alternative to Platt scaling and the
// second post-processing option of the mitigation baseline.
type Isotonic struct {
	// breakpoints and values describe the fitted step function:
	// scores ≤ breakpoints[i] map to values[i] (with linear
	// interpolation between adjacent breakpoints for stability).
	breakpoints []float64
	values      []float64
	fitted      bool
}

// NewIsotonic returns an empty calibrator.
func NewIsotonic() *Isotonic { return &Isotonic{} }

// Fit learns the monotone mapping from raw scores to labels,
// optionally weighted (nil = uniform).
func (iso *Isotonic) Fit(scores []float64, labels []int, w []float64) error {
	if len(scores) == 0 {
		return ErrNoData
	}
	if len(labels) != len(scores) {
		return fmt.Errorf("%w: %d scores vs %d labels", ErrShape, len(scores), len(labels))
	}
	if w != nil && len(w) != len(scores) {
		return fmt.Errorf("%w: %d weights for %d scores", ErrBadWeights, len(w), len(scores))
	}
	type point struct {
		x, y, w float64
	}
	pts := make([]point, len(scores))
	var totalW float64
	for i, s := range scores {
		wi := 1.0
		if w != nil {
			wi = w[i]
			if wi < 0 {
				return fmt.Errorf("%w: negative weight %v at %d", ErrBadWeights, wi, i)
			}
		}
		totalW += wi
		pts[i] = point{x: s, y: label01(labels[i]), w: wi}
	}
	if totalW <= 0 {
		return fmt.Errorf("%w: weights sum to %v", ErrBadWeights, totalW)
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a].x < pts[b].x })

	// Pool adjacent violators over the sorted points.
	type block struct {
		sumWY, sumW float64
		maxX        float64
	}
	var stack []block
	for _, p := range pts {
		if p.w == 0 {
			continue
		}
		b := block{sumWY: p.w * p.y, sumW: p.w, maxX: p.x}
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			if top.sumWY/top.sumW <= b.sumWY/b.sumW {
				break
			}
			b.sumWY += top.sumWY
			b.sumW += top.sumW
			stack = stack[:len(stack)-1]
		}
		stack = append(stack, b)
	}
	if len(stack) == 0 {
		return fmt.Errorf("%w: all weights zero", ErrBadWeights)
	}
	iso.breakpoints = make([]float64, len(stack))
	iso.values = make([]float64, len(stack))
	for i, b := range stack {
		iso.breakpoints[i] = b.maxX
		iso.values[i] = b.sumWY / b.sumW
	}
	iso.fitted = true
	return nil
}

// Apply maps raw scores through the fitted step function, clamping
// outside the observed range.
func (iso *Isotonic) Apply(scores []float64) ([]float64, error) {
	if !iso.fitted {
		return nil, ErrNotFitted
	}
	out := make([]float64, len(scores))
	for i, s := range scores {
		out[i] = iso.at(s)
	}
	return out, nil
}

// at evaluates the step function at one score.
func (iso *Isotonic) at(s float64) float64 {
	n := len(iso.breakpoints)
	// Index of the first breakpoint >= s.
	j := sort.SearchFloat64s(iso.breakpoints, s)
	if j >= n {
		return iso.values[n-1]
	}
	return iso.values[j]
}
