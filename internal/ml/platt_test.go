package ml

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// overconfidentScores builds scores that are systematically more
// extreme than the labels warrant: the true positive probability is
// sigmoid(z) but the reported score is sigmoid(3z).
func overconfidentScores(n int, seed int64) (scores []float64, labels []int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		z := rng.NormFloat64()
		p := sigmoid(z)
		scores = append(scores, sigmoid(3*z))
		if rng.Float64() < p {
			labels = append(labels, 1)
		} else {
			labels = append(labels, 0)
		}
	}
	return scores, labels
}

func TestPlattValidation(t *testing.T) {
	p := NewPlatt()
	if err := p.Fit(nil, nil, nil); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v", err)
	}
	if err := p.Fit([]float64{0.5}, []int{1, 0}, nil); !errors.Is(err, ErrShape) {
		t.Errorf("err = %v", err)
	}
	if err := p.Fit([]float64{0.5}, []int{1}, []float64{1, 2}); !errors.Is(err, ErrBadWeights) {
		t.Errorf("err = %v", err)
	}
	if err := p.Fit([]float64{0.5}, []int{1}, []float64{-1}); !errors.Is(err, ErrBadWeights) {
		t.Errorf("err = %v", err)
	}
	if err := p.Fit([]float64{0.5}, []int{1}, []float64{0}); !errors.Is(err, ErrBadWeights) {
		t.Errorf("err = %v", err)
	}
	bad := NewPlatt()
	bad.MaxIter = 0
	if err := bad.Fit([]float64{0.5}, []int{1}, nil); err == nil {
		t.Error("expected hyperparameter error")
	}
	if _, err := p.Apply([]float64{0.5}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("err = %v", err)
	}
	if _, _, err := p.Coefficients(); !errors.Is(err, ErrNotFitted) {
		t.Errorf("err = %v", err)
	}
}

func TestPlattReducesMiscalibration(t *testing.T) {
	scores, labels := overconfidentScores(2000, 42)
	p := NewPlatt()
	if err := p.Fit(scores, labels, nil); err != nil {
		t.Fatal(err)
	}
	calibrated, err := p.Apply(scores)
	if err != nil {
		t.Fatal(err)
	}
	// Binned calibration error must shrink substantially.
	before := binnedECE(scores, labels, 10)
	after := binnedECE(calibrated, labels, 10)
	if after >= before*0.7 {
		t.Errorf("Platt did not help: ECE %v -> %v", before, after)
	}
	// The fitted slope must compress the overconfident logits (a < 1).
	a, _, err := p.Coefficients()
	if err != nil {
		t.Fatal(err)
	}
	if a >= 1 {
		t.Errorf("slope = %v, want < 1 for overconfident input", a)
	}
}

// binnedECE is a local ECE implementation to avoid importing calib
// into ml (layering).
func binnedECE(scores []float64, labels []int, bins int) float64 {
	count := make([]float64, bins)
	sumS := make([]float64, bins)
	sumY := make([]float64, bins)
	for i, s := range scores {
		b := int(s * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		count[b]++
		sumS[b] += s
		sumY[b] += label01(labels[i])
	}
	var e float64
	n := float64(len(scores))
	for b := 0; b < bins; b++ {
		if count[b] == 0 {
			continue
		}
		e += count[b] / n * math.Abs(sumS[b]/count[b]-sumY[b]/count[b])
	}
	return e
}

func TestPlattMonotone(t *testing.T) {
	scores, labels := overconfidentScores(500, 7)
	p := NewPlatt()
	if err := p.Fit(scores, labels, nil); err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.05, 0.2, 0.4, 0.6, 0.8, 0.95}
	out, err := p.Apply(probe)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			t.Errorf("calibration not monotone: %v", out)
		}
	}
	for _, v := range out {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Errorf("calibrated score %v out of range", v)
		}
	}
}

func TestPlattExtremeScores(t *testing.T) {
	p := NewPlatt()
	if err := p.Fit([]float64{0, 1, 0, 1}, []int{0, 1, 0, 1}, nil); err != nil {
		t.Fatal(err)
	}
	out, err := p.Apply([]float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("extreme input produced %v", v)
		}
	}
}

func TestSafeLogit(t *testing.T) {
	if v := safeLogit(0); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Errorf("safeLogit(0) = %v", v)
	}
	if v := safeLogit(1); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Errorf("safeLogit(1) = %v", v)
	}
	if v := safeLogit(0.5); math.Abs(v) > 1e-12 {
		t.Errorf("safeLogit(0.5) = %v, want 0", v)
	}
}

func TestCalibratedClassifier(t *testing.T) {
	X, y := noisyData(400, 21)
	c := NewCalibrated(NewGaussianNB())
	if c.Name() != "naivebayes+platt" {
		t.Errorf("name = %q", c.Name())
	}
	if _, err := c.PredictProba(X); !errors.Is(err, ErrNotFitted) {
		t.Errorf("err = %v", err)
	}
	if err := c.Fit(X, y, nil); err != nil {
		t.Fatal(err)
	}
	scores, err := c.PredictProba(X)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scores {
		if s < 0 || s > 1 || math.IsNaN(s) {
			t.Fatalf("score %v out of range", s)
		}
	}
	// Calibration should be at least as good as the raw base model's.
	raw := NewGaussianNB()
	if err := raw.Fit(X, y, nil); err != nil {
		t.Fatal(err)
	}
	rawScores, err := raw.PredictProba(X)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := binnedECE(scores, y, 10), binnedECE(rawScores, y, 10); a > b*1.1 {
		t.Errorf("calibrated ECE %v worse than raw %v", a, b)
	}
	// Importance delegates to the base.
	if imp := c.FeatureImportance(); len(imp) != 2 {
		t.Errorf("importance = %v", imp)
	}
}

func TestCalibratedClassifierErrorPropagation(t *testing.T) {
	c := NewCalibrated(NewGaussianNB())
	if err := c.Fit(nil, nil, nil); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v", err)
	}
}
