// Distributed-serving benchmarks: the shard-merge kernels and the
// router's scatter-gather hot path over the paper-sized LA index.
// Baselines live in BENCH_index.json next to the serving entries.
package fairindex_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	fairindex "fairindex"
	"fairindex/internal/router"
	"fairindex/internal/server"
	"fairindex/internal/shard"
)

const benchShardCount = 4

// shardFixture splits the shared paper-sized index and precomputes
// the gathered per-region rows a router would hold after a stats
// fan-out (global ids, ascending, raw sums populated).
func shardFixture(b *testing.B) (*fairindex.Index, *shard.Manifest, []*fairindex.Index, []fairindex.RegionStat) {
	b.Helper()
	whole, err := fullIndex()
	if err != nil {
		b.Fatal(err)
	}
	m, shards, err := shard.Split(whole, benchShardCount)
	if err != nil {
		b.Fatal(err)
	}
	task := whole.Tasks()[0]
	var gathered []fairindex.RegionStat
	for i, sx := range shards {
		// Owned regions only: the trailing foreign-sentinel region (when
		// present) has no global id and never reaches the merge.
		local := make([]int, m.Shards[i].Hi-m.Shards[i].Lo)
		for j := range local {
			local[j] = j
		}
		ws, err := sx.GroupStats(task, local)
		if err != nil {
			b.Fatal(err)
		}
		for _, rs := range ws.Regions {
			global, ok := m.ToGlobal(i, rs.Region)
			if !ok {
				b.Fatalf("shard %d: region %d has no global id", i, rs.Region)
			}
			rs.Region = global
			gathered = append(gathered, rs)
		}
	}
	return whole, m, shards, gathered
}

// BenchmarkShardMergeGroupStats is the router's stats merge kernel:
// refolding the gathered per-region sufficient statistics into one
// window. Allocation here is a fixed handful (the result's region
// slice), never per-region — the alloc gate in CI enforces that.
func BenchmarkShardMergeGroupStats(b *testing.B) {
	whole, _, _, gathered := shardFixture(b)
	task := whole.Tasks()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws, err := fairindex.MergeWindowStats(task, gathered)
		if err != nil {
			b.Fatal(err)
		}
		if ws.Count == 0 {
			b.Fatal("empty merge")
		}
	}
}

// BenchmarkRouterLocateBatch is the end-to-end scatter-gather path: a
// 1000-point batch through the HTTP router, split across real shard
// servers and reassembled in manifest order. Compare with
// BenchmarkIndexLocateBatch for the wire + fan-out overhead over the
// in-process kernel.
func BenchmarkRouterLocateBatch(b *testing.B) {
	_, m, shards, _ := shardFixture(b)
	backends := make([]router.Backend, len(shards))
	for i, sx := range shards {
		ts := httptest.NewServer(server.New(sx))
		defer ts.Close()
		backends[i] = router.Backend{Name: m.Shards[i].Name, URL: ts.URL}
	}
	rt, err := router.New(m, backends)
	if err != nil {
		b.Fatal(err)
	}
	rts := httptest.NewServer(rt)
	defer rts.Close()

	ds, err := fullLA()
	if err != nil {
		b.Fatal(err)
	}
	const batch = 1000
	var lats, lons strings.Builder
	for i := 0; i < batch; i++ {
		if i > 0 {
			lats.WriteByte(',')
			lons.WriteByte(',')
		}
		rec := &ds.Records[i%ds.Len()]
		fmt.Fprintf(&lats, "%v", rec.Lat)
		fmt.Fprintf(&lons, "%v", rec.Lon)
	}
	body := fmt.Sprintf(`{"lats":[%s],"lons":[%s]}`, lats.String(), lons.String())
	client := rts.Client()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(rts.URL+"/v1/locate_batch", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

// BenchmarkRouterLocateFailover is the healthy-path cost of the
// replica layer: single-point locates through a router whose shards
// each name two live replicas, so every request pays the breaker
// bookkeeping, rotation, and failover budget arithmetic without ever
// failing over. Compare with BenchmarkRouterLocateBatch to see the
// replica bookkeeping is noise against the wire cost.
func BenchmarkRouterLocateFailover(b *testing.B) {
	_, m, shards, _ := shardFixture(b)
	backends := make([]router.Backend, len(shards))
	for i, sx := range shards {
		srv := server.New(sx)
		a := httptest.NewServer(srv)
		defer a.Close()
		bb := httptest.NewServer(srv)
		defer bb.Close()
		backends[i] = router.Backend{Name: m.Shards[i].Name, URLs: []string{a.URL, bb.URL}}
	}
	rt, err := router.New(m, backends)
	if err != nil {
		b.Fatal(err)
	}
	rts := httptest.NewServer(rt)
	defer rts.Close()

	ds, err := fullLA()
	if err != nil {
		b.Fatal(err)
	}
	client := rts.Client()
	urls := make([]string, 64)
	for i := range urls {
		rec := &ds.Records[(i*131)%ds.Len()]
		urls[i] = fmt.Sprintf("%s/v1/locate?lat=%v&lon=%v", rts.URL, rec.Lat, rec.Lon)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(urls[i%len(urls)])
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}
