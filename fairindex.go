// Package fairindex is a Go implementation of fairness-aware spatial
// indexing as introduced in "Fair Spatial Indexing: A paradigm for
// Group Spatial Fairness" (Shaham, Ghinita, Shahabi — EDBT 2024,
// arXiv:2302.02306).
//
// The library partitions a geospatial data domain into neighborhoods
// (spatial groups) such that a binary classifier trained with the
// neighborhood attribute is well calibrated in every neighborhood,
// not just citywide. It provides:
//
//   - the Fair KD-tree, Iterative Fair KD-tree and Multi-Objective
//     Fair KD-tree construction algorithms from the paper, plus a
//     median KD-tree, uniform-grid, Voronoi (zip-code-like) and fair
//     quadtree for comparison;
//   - the fairness metrics: per-group calibration, ECE and ENCE
//     (Expected Neighborhood Calibration Error);
//   - a from-scratch ML substrate (logistic regression, CART decision
//     tree, Gaussian naive Bayes — all weighted) and the
//     Kamiran–Calders reweighing baseline;
//   - an end-to-end pipeline reproducing the paper's evaluation, and
//     a synthetic city generator standing in for the EdGap data;
//   - the Index artifact: a build-once / query-many serving index
//     with O(1) point→neighborhood lookup, sharded batch lookups,
//     calibrated per-task scoring and versioned binary serialization;
//     internal/server (via fairindexctl serve) exposes it as a
//     concurrent HTTP/JSON service with atomic hot reload;
//   - the region-query engine over the same artifact: pruned range
//     queries (RangeQuery), k-nearest-region queries over a centroid
//     kd-tree (NearestRegions) and exact window fairness aggregation
//     (GroupStats) — see docs/QUERIES.md for the query model.
//
// # Quick start
//
// Build an Index once, then query it many times (it is immutable and
// safe for concurrent readers):
//
//	ds, err := fairindex.GenerateCity(fairindex.LA(), fairindex.MustGrid(64, 64))
//	if err != nil { ... }
//	idx, err := fairindex.Build(ds,
//		fairindex.WithMethod(fairindex.MethodFairKD),
//		fairindex.WithHeight(8),
//	)
//	if err != nil { ... }
//	region, err := idx.Locate(34.05, -118.25) // O(1), no tree walk
//	score, err := idx.Score(ds.Records[0], 0) // calibrated P(y=1|x)
//	report, err := idx.Report(0)              // stored metric report
//	fmt.Printf("region %d, score %.3f, ENCE %.4f over %d neighborhoods\n",
//		region, score, report.ENCE, idx.NumRegions())
//
// Persist with idx.MarshalBinary and restore with UnmarshalBinary —
// the restored index reproduces bit-identical outputs, so an index
// can be built offline and shipped to a server.
//
// The experiment-style surface remains: Run executes one end-to-end
// evaluation and returns only the metric report:
//
//	res, err := fairindex.Run(ds, fairindex.Config{
//		Method: fairindex.MethodFairKD,
//		Height: 8,
//	})
//
// See the examples/ directory for runnable programs and DESIGN.md for
// the architecture and the paper-to-code mapping.
package fairindex

import (
	"io"

	"fairindex/internal/calib"
	"fairindex/internal/dataset"
	"fairindex/internal/geo"
	"fairindex/internal/kdtree"
	"fairindex/internal/ml"
	"fairindex/internal/partition"
	"fairindex/internal/pipeline"
)

// Geometry types (see the geo package for methods).
type (
	// Cell is one cell of the base grid (row, column).
	Cell = geo.Cell
	// CellRect is a half-open rectangle of grid cells.
	CellRect = geo.CellRect
	// Grid is the U×V base grid overlaid on the map.
	Grid = geo.Grid
	// BBox is a geographic bounding box in degrees.
	BBox = geo.BBox
	// Mapper converts between coordinates and grid cells.
	Mapper = geo.Mapper
)

// NewGrid returns a U×V grid, rejecting non-positive dimensions.
func NewGrid(u, v int) (Grid, error) { return geo.NewGrid(u, v) }

// MustGrid is like NewGrid but panics on invalid dimensions.
func MustGrid(u, v int) Grid { return geo.MustGrid(u, v) }

// NewMapper returns a coordinate↔cell mapper for a grid and box.
func NewMapper(g Grid, b BBox) (Mapper, error) { return geo.NewMapper(g, b) }

// Dataset types.
type (
	// Dataset is a collection of located, labeled records.
	Dataset = dataset.Dataset
	// Record is one individual: location, features, per-task labels.
	Record = dataset.Record
	// CitySpec parameterizes the synthetic city generator.
	CitySpec = dataset.CitySpec
	// Encoding selects the neighborhood feature encoding.
	Encoding = dataset.Encoding
)

// Neighborhood encoding choices.
const (
	EncDefault        = dataset.EncDefault
	EncCentroid       = dataset.EncCentroid
	EncOneHot         = dataset.EncOneHot
	EncCentroidOneHot = dataset.EncCentroidOneHot
)

// LA returns the synthetic Los Angeles spec (1153 records), mirroring
// the paper's first evaluation dataset.
func LA() CitySpec { return dataset.LA() }

// Houston returns the synthetic Houston spec (966 records).
func Houston() CitySpec { return dataset.Houston() }

// GenerateCity builds a deterministic synthetic city dataset.
func GenerateCity(spec CitySpec, grid Grid) (*Dataset, error) {
	return dataset.Generate(spec, grid)
}

// ReadDatasetCSV parses a dataset from the canonical CSV layout
// (id, lat, lon, features..., label:task...).
func ReadDatasetCSV(r io.Reader, name string, grid Grid, box BBox) (*Dataset, error) {
	return dataset.ReadCSV(r, name, grid, box)
}

// WriteDatasetCSV serializes a dataset in the canonical CSV layout.
func WriteDatasetCSV(ds *Dataset, w io.Writer) error {
	return dataset.WriteCSV(ds, w)
}

// Partition is a complete non-overlapping assignment of grid cells to
// neighborhoods.
type Partition = partition.Partition

// UniformGridPartition partitions the grid into 2^height equal blocks
// (the reweighting baseline's granularity match).
func UniformGridPartition(grid Grid, height int) (*Partition, error) {
	return partition.UniformGrid(grid, height)
}

// VoronoiPartition builds a zip-code-like nearest-site partition;
// cellWeights (e.g. Dataset.CellCounts) biases site placement toward
// populated cells.
func VoronoiPartition(grid Grid, numSites int, seed int64, cellWeights []int) (*Partition, error) {
	return partition.Voronoi(grid, numSites, seed, cellWeights)
}

// Index types.
type (
	// Tree is a KD partitioning tree over the grid.
	Tree = kdtree.Tree
	// TreeNode is one node of a Tree.
	TreeNode = kdtree.Node
	// QuadTree is the fair quadtree extension.
	QuadTree = kdtree.QuadTree
	// TreeConfig parameterizes the fair tree builders.
	TreeConfig = kdtree.Config
	// Objective selects the fair split scoring function.
	Objective = kdtree.Objective
	// RetrainFunc supplies refreshed deviations per level to the
	// iterative builder.
	RetrainFunc = kdtree.RetrainFunc
)

// Split objective choices.
const (
	// ObjectiveEq9 is the paper's split objective (Eq. 9).
	ObjectiveEq9 = kdtree.ObjectiveEq9
	// ObjectiveLiteralEq13 is the literal Eq. 13 form (see DESIGN.md).
	ObjectiveLiteralEq13 = kdtree.ObjectiveLiteralEq13
	// ObjectiveComposite blends geometry and fairness (future work §6).
	ObjectiveComposite = kdtree.ObjectiveComposite
)

// BuildMedianKDTree constructs the standard median KD-tree baseline.
func BuildMedianKDTree(grid Grid, cells []Cell, height int) (*Tree, error) {
	return kdtree.BuildMedian(grid, cells, height)
}

// BuildFairKDTree constructs the Fair KD-tree (Algorithms 1–2) from
// per-record signed deviations s−y of an initial classifier run.
func BuildFairKDTree(grid Grid, cells []Cell, deviations []float64, cfg TreeConfig) (*Tree, error) {
	return kdtree.BuildFair(grid, cells, deviations, cfg)
}

// BuildIterativeFairKDTree constructs the Iterative Fair KD-tree
// (Algorithm 3), calling retrain once per level for refreshed
// deviations.
func BuildIterativeFairKDTree(grid Grid, cells []Cell, cfg TreeConfig, retrain RetrainFunc) (*Tree, error) {
	return kdtree.BuildIterative(grid, cells, cfg, retrain)
}

// BuildMultiObjectiveFairKDTree constructs the Multi-Objective Fair
// KD-tree (§4.3) over α-weighted per-task deviations.
func BuildMultiObjectiveFairKDTree(grid Grid, cells []Cell, scoreSets [][]float64, labelSets [][]int, alphas []float64, cfg TreeConfig) (*Tree, error) {
	return kdtree.BuildMultiObjective(grid, cells, scoreSets, labelSets, alphas, cfg)
}

// BuildFairQuadtree constructs the fair quadtree extension.
func BuildFairQuadtree(grid Grid, cells []Cell, deviations []float64, height int) (*QuadTree, error) {
	return kdtree.BuildFairQuadtree(grid, cells, deviations, height)
}

// BuildFairCurve partitions the grid into up to 2^height contiguous
// Hilbert-curve segments cut at deviation medians — the
// space-filling-curve alternative index (future work §6).
func BuildFairCurve(grid Grid, cells []Cell, deviations []float64, height int) (*Partition, error) {
	return kdtree.BuildFairCurve(grid, cells, deviations, height)
}

// HilbertOrder returns every grid cell in Hilbert-curve order.
func HilbertOrder(grid Grid) ([]Cell, error) { return kdtree.HilbertOrder(grid) }

// Pipeline types.
type (
	// Config parameterizes an end-to-end run (Figure 3's flow).
	Config = pipeline.Config
	// Result is the output of a run.
	Result = pipeline.Result
	// TaskResult is the per-task metric report within a Result.
	TaskResult = pipeline.TaskResult
	// Method selects the partitioning / mitigation strategy.
	Method = pipeline.Method
	// NeighborhoodReport is a per-neighborhood calibration summary.
	NeighborhoodReport = calib.NeighborhoodReport
)

// Partitioning / mitigation strategies.
const (
	MethodMedianKD             = pipeline.MethodMedianKD
	MethodFairKD               = pipeline.MethodFairKD
	MethodIterativeFairKD      = pipeline.MethodIterativeFairKD
	MethodMultiObjectiveFairKD = pipeline.MethodMultiObjectiveFairKD
	MethodGridReweight         = pipeline.MethodGridReweight
	MethodZipCode              = pipeline.MethodZipCode
	MethodFairQuadtree         = pipeline.MethodFairQuadtree
)

// Run executes the end-to-end pipeline: initial scoring over the base
// grid, fairness-aware partitioning, neighborhood update, final
// training and the metric report.
func Run(ds *Dataset, cfg Config) (*Result, error) { return pipeline.Run(ds, cfg) }

// Model types.
type (
	// Classifier is a binary classifier with confidence scores.
	Classifier = ml.Classifier
	// ModelKind selects a classifier family.
	ModelKind = ml.ModelKind
)

// Classifier families.
const (
	ModelLogReg       = ml.ModelLogReg
	ModelDecisionTree = ml.ModelDecisionTree
	ModelNaiveBayes   = ml.ModelNaiveBayes
)

// NewClassifier returns a fresh classifier of the given kind.
func NewClassifier(kind ModelKind) (Classifier, error) { return ml.New(kind) }

// Fairness metrics.

// ENCE computes the Expected Neighborhood Calibration Error
// (Definition 3) of scores and labels grouped by neighborhood ids in
// [0, numGroups).
func ENCE(scores []float64, labels []int, groups []int, numGroups int) (float64, error) {
	return calib.ENCE(scores, labels, groups, numGroups)
}

// ECE computes the Expected Calibration Error over equal-width score
// bins (Appendix A.1).
func ECE(scores []float64, labels []int, bins int) (float64, error) {
	return calib.ECE(scores, labels, bins)
}

// CalibrationRatio returns e(h)/o(h) (Eq. 2); ok is false when the
// positive rate is zero.
func CalibrationRatio(scores []float64, labels []int) (ratio float64, ok bool) {
	return calib.Ratio(scores, labels)
}

// Miscalibration returns the absolute overall miscalibration |e−o|.
func Miscalibration(scores []float64, labels []int) float64 {
	return calib.MiscalAbs(scores, labels)
}

// TopNeighborhoods reports per-neighborhood calibration for the k
// most populated neighborhoods (Figure 6's view).
func TopNeighborhoods(scores []float64, labels []int, groups []int, numGroups, k, bins int) ([]NeighborhoodReport, error) {
	return calib.TopNeighborhoods(scores, labels, groups, numGroups, k, bins)
}

// StatisticalParityGap returns the max−min spread of per-group
// positive-decision rates at the threshold over groups with at least
// minCount members (0 = all non-empty groups; a perfect-parity
// decision scores 0). One of the §3 group-fairness notions.
func StatisticalParityGap(scores []float64, labels []int, groups []int, numGroups int, threshold float64, minCount int) (float64, error) {
	return calib.StatisticalParityGap(scores, labels, groups, numGroups, threshold, minCount)
}

// EqualizedOddsGap returns the larger of the per-group TPR and FPR
// spreads at the threshold over groups with at least minCount members
// (0 = equalized odds).
func EqualizedOddsGap(scores []float64, labels []int, groups []int, numGroups int, threshold float64, minCount int) (float64, error) {
	return calib.EqualizedOddsGap(scores, labels, groups, numGroups, threshold, minCount)
}

// PostProcess selects the optional per-neighborhood score
// recalibration of Config.PostProcess (the §3 post-processing
// mitigation family).
type PostProcess = pipeline.PostProcess

// Post-processing choices.
const (
	PostNone     = pipeline.PostNone
	PostPlatt    = pipeline.PostPlatt
	PostIsotonic = pipeline.PostIsotonic
)
