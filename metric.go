package fairindex

import (
	"fairindex/internal/calib"
)

// Pluggable fairness-metric layer. A Metric is a named, deterministic,
// total function of per-region sufficient statistics; registered
// metrics are selectable by name everywhere the library evaluates
// fairness: Index.GroupStatsMetrics, the HTTP /v1/stats and
// /v1/compare endpoints, per-metric drift thresholds
// (SetDriftThresholds) and the partitioner objective
// (WithObjectiveMetric). See docs/METRICS.md for the contract and a
// registration walkthrough.

type (
	// Metric is the pluggable fairness-metric contract: Name() and
	// Compute over a window of per-region sufficient statistics.
	Metric = calib.Metric
	// SuffStats is one region's additive sufficient statistics
	// (population, Σ score, Σ label) — the only inputs a Metric sees,
	// which is what keeps window aggregates exact.
	SuffStats = calib.SuffStats
)

// Built-in metric names, registered at init.
const (
	// MetricENCE is the paper's Expected Neighborhood Calibration
	// Error (Definition 3).
	MetricENCE = calib.MetricENCE
	// MetricCalRatio is the window calibration ratio e/o (Eq. 2);
	// NaN when the window has no positives.
	MetricCalRatio = calib.MetricCalRatio
	// MetricMiscalAbs is the pooled absolute miscalibration |e−o|.
	MetricMiscalAbs = calib.MetricMiscalAbs
	// MetricStatParity is the max−min spread of per-region mean
	// predicted scores (expectation-form demographic parity).
	MetricStatParity = calib.MetricStatParity
	// MetricAccuracyParity is the max−min spread of per-region
	// expected accuracy.
	MetricAccuracyParity = calib.MetricAccuracyParity
	// MetricAtkinson is the Atkinson inequality index over per-region
	// miscalibration at ε = 0.5.
	MetricAtkinson = calib.MetricAtkinson
)

// RegisterMetric adds a custom metric to the process-wide catalog. It
// panics on a nil metric, an empty name or a duplicate registration —
// call it from init or program startup:
//
//	fairindex.RegisterMetric(fairindex.MetricFunc("worst_region",
//		func(stats []fairindex.SuffStats) float64 {
//			var worst float64
//			for _, g := range stats {
//				if g.Count > 0 && g.MiscalAbs() > worst {
//					worst = g.MiscalAbs()
//				}
//			}
//			return worst
//		}))
func RegisterMetric(m Metric) { calib.RegisterMetric(m) }

// Metrics returns every registered metric name, sorted.
func Metrics() []string { return calib.MetricNames() }

// MetricByName looks a registered metric up by name.
func MetricByName(name string) (Metric, bool) { return calib.MetricByName(name) }

// MetricFunc wraps a named function as a Metric.
func MetricFunc(name string, fn func(stats []SuffStats) float64) Metric {
	return calib.MetricFunc(name, fn)
}

// AtkinsonMetric returns the Atkinson inequality metric over
// per-region miscalibration with inequality aversion eps (named
// "atkinson_<eps>"; eps = 0.5 yields the built-in "atkinson").
// Register non-default aversions to make them name-selectable.
func AtkinsonMetric(eps float64) Metric { return calib.AtkinsonMetric(eps) }
