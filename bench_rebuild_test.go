// Rebuild control-plane benchmark: the promotion gate's
// candidate-vs-serving evaluation cost over the paper-sized LA index.
// Baseline lives in BENCH_index.json next to the serving entries.
package fairindex_test

import (
	"sync"
	"testing"

	fairindex "fairindex"
	"fairindex/internal/rebuild"
)

// candidateIndex lazily builds the gate's "candidate" side: the same
// paper-sized LA workload as fullIndex under a different seed, so the
// evaluation compares two genuinely distinct partitions the way a
// real rebuild does.
var candidateIndex = sync.OnceValues(func() (*fairindex.Index, error) {
	ds, err := fullLA()
	if err != nil {
		return nil, err
	}
	return fairindex.Build(ds,
		fairindex.WithMethod(fairindex.MethodFairKD),
		fairindex.WithHeight(8),
		fairindex.WithSeed(17))
})

// BenchmarkRebuildGate measures one full promotion-gate evaluation —
// both default budget metrics (ence, cal_ratio) over the whole-box
// probe window, each side resolved through its own RangeQuery — the
// per-candidate cost the rebuild controller pays between build and
// swap. Gated in CI so the gate stays negligible next to the build it
// judges.
func BenchmarkRebuildGate(b *testing.B) {
	serving, err := fullIndex()
	if err != nil {
		b.Fatal(err)
	}
	candidate, err := candidateIndex()
	if err != nil {
		b.Fatal(err)
	}
	budgets := rebuild.DefaultBudgets()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := rebuild.Evaluate(serving, candidate, budgets, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(dec.Deltas) == 0 {
			b.Fatal("empty evaluation grid")
		}
	}
}
