// Benchmarks: one target per figure of the paper's evaluation
// (Figures 6–10 and the §5.3.1 timing comparison) plus micro and
// ablation benches for the design choices called out in DESIGN.md.
//
// The per-figure benchmarks execute the same harnesses as
// cmd/fairbench on reduced workloads so `go test -bench=.` stays
// bounded; run `go run ./cmd/fairbench` for the full-size series.
// Each figure bench logs its rendered series once (visible with -v).
package fairindex_test

import (
	"sync"
	"testing"

	fairindex "fairindex"
	"fairindex/internal/dataset"
	"fairindex/internal/experiments"
	"fairindex/internal/geo"
	"fairindex/internal/kdtree"
	"fairindex/internal/ml"
	"fairindex/internal/pipeline"
	"fairindex/internal/registry"
)

// benchOptions is the reduced workload shared by the figure benches.
func benchOptions() experiments.Options {
	la := dataset.LA()
	la.NumRecords = 400
	hou := dataset.Houston()
	hou.NumRecords = 350
	return experiments.Options{
		Grid:     geo.MustGrid(32, 32),
		Cities:   []dataset.CitySpec{la, hou},
		Seed:     11,
		ZipSites: 20,
	}
}

// fullLA lazily generates the paper-sized Los Angeles dataset for the
// timing and micro benches.
var fullLA = sync.OnceValues(func() (*dataset.Dataset, error) {
	return dataset.Generate(dataset.LA(), geo.MustGrid(64, 64))
})

func BenchmarkFig6Disparity(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		results, err := experiments.Fig6(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, c := range results {
				b.Log("\n" + c.Render())
			}
		}
	}
}

func BenchmarkFig7ENCE(b *testing.B) {
	opt := benchOptions()
	heights := []int{4, 6, 8}
	models := []ml.ModelKind{ml.ModelLogReg}
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Fig7(opt, heights, models)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, c := range cells {
				b.Log("\n" + c.Render())
			}
		}
	}
}

func BenchmarkFig8Utility(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		cities, err := experiments.Fig8(opt, []int{4, 6, 8})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, c := range cities {
				b.Log("\n" + c.Render())
			}
		}
	}
}

func BenchmarkFig9Importance(b *testing.B) {
	opt := benchOptions()
	opt.Cities = opt.Cities[:1]
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Fig9(opt, []int{2, 4, 6})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, c := range cells {
				b.Log("\n" + c.Render())
			}
		}
	}
}

func BenchmarkFig10MultiObjective(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Fig10(opt, []int{4, 6})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, c := range cells {
				b.Log("\n" + c.Render())
			}
		}
	}
}

// The §5.3.1 timing comparison at the paper's reference point
// (height 10, full-size Los Angeles): BenchmarkBuildFairKD vs
// BenchmarkBuildIterativeKD is the 102 s vs 189 s claim, shape-only.
func BenchmarkBuildFairKD(b *testing.B) {
	benchBuild(b, pipeline.MethodFairKD)
}

func BenchmarkBuildIterativeKD(b *testing.B) {
	benchBuild(b, pipeline.MethodIterativeFairKD)
}

func BenchmarkBuildMedianKD(b *testing.B) {
	benchBuild(b, pipeline.MethodMedianKD)
}

func benchBuild(b *testing.B, method pipeline.Method) {
	b.Helper()
	ds, err := fullLA()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pipeline.Run(ds, pipeline.Config{Method: method, Height: 10, Seed: 11})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("%v: build %v, final train %v, regions %d",
				method, res.BuildTime, res.TrainTime, res.NumRegions)
		}
	}
}

// Ablation: the literal Eq. 13 objective vs the consistent Eq. 9 form
// (DESIGN.md §2). The deviation mass left in the leaves is logged for
// comparison.
func BenchmarkAblationEq13(b *testing.B) {
	benchObjective(b, kdtree.ObjectiveLiteralEq13, 0)
}

func BenchmarkAblationEq9(b *testing.B) {
	benchObjective(b, kdtree.ObjectiveEq9, 0)
}

// Ablation: composite split metric (future work §6) at λ = 0.5.
func BenchmarkAblationComposite(b *testing.B) {
	benchObjective(b, kdtree.ObjectiveComposite, 0.5)
}

func benchObjective(b *testing.B, obj kdtree.Objective, lambda float64) {
	b.Helper()
	ds, err := fullLA()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pipeline.Run(ds, pipeline.Config{
			Method:    pipeline.MethodFairKD,
			Height:    8,
			Seed:      11,
			Objective: obj,
			Lambda:    lambda,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("objective %v: train ENCE %.5f over %d regions",
				obj, res.Tasks[0].ENCETrain, res.NumRegions)
		}
	}
}

// Ablation: neighborhood encodings.
func BenchmarkAblationEncodingCentroid(b *testing.B) {
	benchEncoding(b, dataset.EncCentroid)
}

func BenchmarkAblationEncodingOneHot(b *testing.B) {
	benchEncoding(b, dataset.EncOneHot)
}

func benchEncoding(b *testing.B, enc dataset.Encoding) {
	b.Helper()
	ds, err := fullLA()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pipeline.Run(ds, pipeline.Config{
			Method:   pipeline.MethodFairKD,
			Height:   8,
			Seed:     11,
			Encoding: enc,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("encoding %v: train ENCE %.5f, accuracy %.3f",
				enc, res.Tasks[0].ENCETrain, res.Tasks[0].Accuracy)
		}
	}
}

// Ablation: the Hilbert-curve fair partitioner (future work §6)
// against the Fair KD-tree at equal region budget. Logged deviation
// masses compare the two shapes of the same Eq. 9 criterion.
func BenchmarkAblationFairCurve(b *testing.B) {
	ds, err := fullLA()
	if err != nil {
		b.Fatal(err)
	}
	cells := ds.Cells()
	dev := make([]float64, len(cells))
	for i := range dev {
		dev[i] = float64(i%13)/13 - 0.5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := kdtree.BuildFairCurve(ds.Grid, cells, dev, 8)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("fair curve: %d regions", p.NumRegions())
		}
	}
}

// Index serving benchmarks: the build-once / query-many hot path.
// Baselines live in BENCH_index.json so later perf PRs have a
// trajectory to beat.

// fullIndex lazily builds the paper-sized LA index shared by the
// serving benches (the Index is immutable and concurrency-safe, so
// sharing across benchmarks is sound).
var fullIndex = sync.OnceValues(func() (*fairindex.Index, error) {
	ds, err := fullLA()
	if err != nil {
		return nil, err
	}
	return fairindex.Build(ds,
		fairindex.WithMethod(fairindex.MethodFairKD),
		fairindex.WithHeight(8),
		fairindex.WithSeed(11))
})

func BenchmarkIndexBuild(b *testing.B) {
	ds, err := fullLA()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx, err := fairindex.Build(ds,
			fairindex.WithMethod(fairindex.MethodFairKD),
			fairindex.WithHeight(8),
			fairindex.WithSeed(11))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("index: %d regions, build %v, train %v",
				idx.NumRegions(), idx.BuildTime(), idx.TrainTime())
		}
	}
}

// benchmarkScaledBuild is the build-pipeline scaling series: a skewed
// synthetic city at n records (dataset.Scaled), Fair KD-tree at the
// default height 8. BenchmarkIndexBuild10k runs in the default suite;
// the 100k and 1M points live behind the `slow` build tag
// (bench_scale_test.go) and anchor the recorded scaling curve in
// BENCH_index.json.
func benchmarkScaledBuild(b *testing.B, n int) {
	b.Helper()
	ds, err := dataset.Generate(dataset.Scaled(dataset.LA(), n), geo.MustGrid(64, 64))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx, err := fairindex.Build(ds,
			fairindex.WithMethod(fairindex.MethodFairKD),
			fairindex.WithHeight(8),
			fairindex.WithSeed(11))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("n=%d: %d regions, build %v, train %v",
				n, idx.NumRegions(), idx.BuildTime(), idx.TrainTime())
		}
	}
}

func BenchmarkIndexBuild10k(b *testing.B) { benchmarkScaledBuild(b, 10_000) }

func BenchmarkIndexLocate(b *testing.B) {
	idx, err := fullIndex()
	if err != nil {
		b.Fatal(err)
	}
	ds, err := fullLA()
	if err != nil {
		b.Fatal(err)
	}
	n := ds.Len()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := &ds.Records[i%n]
		if _, err := idx.Locate(rec.Lat, rec.Lon); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexLocateBatch(b *testing.B) {
	idx, err := fullIndex()
	if err != nil {
		b.Fatal(err)
	}
	ds, err := fullLA()
	if err != nil {
		b.Fatal(err)
	}
	const batch = 1000
	lats := make([]float64, batch)
	lons := make([]float64, batch)
	for i := 0; i < batch; i++ {
		rec := &ds.Records[i%ds.Len()]
		lats[i] = rec.Lat
		lons[i] = rec.Lon
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.LocateBatch(lats, lons); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexLocateBatchLarge is the sharded hot path: a
// ≥100k-point batch splits across GOMAXPROCS workers (ns/op here is
// per batch; divide by 131072 for ns/point). On a single-core runner
// it degrades to the same inlined sequential kernel.
func BenchmarkIndexLocateBatchLarge(b *testing.B) {
	idx, err := fullIndex()
	if err != nil {
		b.Fatal(err)
	}
	ds, err := fullLA()
	if err != nil {
		b.Fatal(err)
	}
	const batch = 131072
	lats := make([]float64, batch)
	lons := make([]float64, batch)
	for i := 0; i < batch; i++ {
		rec := &ds.Records[i%ds.Len()]
		lats[i] = rec.Lat
		lons[i] = rec.Lon
	}
	out := make([]int, batch)
	b.SetBytes(batch * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := idx.LocateBatchInto(out, lats, lons); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexScore(b *testing.B) {
	idx, err := fullIndex()
	if err != nil {
		b.Fatal(err)
	}
	ds, err := fullLA()
	if err != nil {
		b.Fatal(err)
	}
	n := ds.Len()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.Score(ds.Records[i%n], 0); err != nil {
			b.Fatal(err)
		}
	}
}

// Query-engine benchmarks: the region workload added with the query
// subsystem. RangeQuery sweeps a quarter-box window (prunes via the
// per-region bounding rects), NearestRegions runs the centroid
// kd-tree search, GroupStats aggregates the stored per-region
// sufficient statistics over a quarter-box window.

func BenchmarkIndexRangeQuery(b *testing.B) {
	idx, err := fullIndex()
	if err != nil {
		b.Fatal(err)
	}
	box := idx.Box()
	q := fairindex.BBox{
		MinLat: box.MinLat, MinLon: box.MinLon,
		MaxLat: (box.MinLat + box.MaxLat) / 2, MaxLon: (box.MinLon + box.MaxLon) / 2,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		overlaps, err := idx.RangeQuery(q)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("quarter-box window: %d of %d regions", len(overlaps), idx.NumRegions())
		}
	}
}

func BenchmarkIndexNearestRegions(b *testing.B) {
	idx, err := fullIndex()
	if err != nil {
		b.Fatal(err)
	}
	ds, err := fullLA()
	if err != nil {
		b.Fatal(err)
	}
	n := ds.Len()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := &ds.Records[i%n]
		if _, err := idx.NearestRegions(rec.Lat, rec.Lon, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexGroupStats(b *testing.B) {
	idx, err := fullIndex()
	if err != nil {
		b.Fatal(err)
	}
	box := idx.Box()
	overlaps, err := idx.RangeQuery(fairindex.BBox{
		MinLat: box.MinLat, MinLon: box.MinLon,
		MaxLat: (box.MinLat + box.MaxLat) / 2, MaxLon: (box.MinLon + box.MaxLon) / 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	regions := make([]int, len(overlaps))
	for i, ov := range overlaps {
		regions[i] = ov.Region
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.GroupStats(0, regions); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexGroupStatsMetrics is BenchmarkIndexGroupStats with
// every registered fairness metric evaluated over the same window —
// the cost of the pluggable-metric layer on top of the legacy
// aggregation.
func BenchmarkIndexGroupStatsMetrics(b *testing.B) {
	idx, err := fullIndex()
	if err != nil {
		b.Fatal(err)
	}
	box := idx.Box()
	overlaps, err := idx.RangeQuery(fairindex.BBox{
		MinLat: box.MinLat, MinLon: box.MinLon,
		MaxLat: (box.MinLat + box.MaxLat) / 2, MaxLon: (box.MinLon + box.MaxLon) / 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	regions := make([]int, len(overlaps))
	for i, ov := range overlaps {
		regions[i] = ov.Region
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.GroupStatsMetrics(0, regions); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexMarshal(b *testing.B) {
	idx, err := fullIndex()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, err := idx.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("index blob: %d bytes", len(blob))
		}
	}
}

func BenchmarkIndexUnmarshal(b *testing.B) {
	idx, err := fullIndex()
	if err != nil {
		b.Fatal(err)
	}
	blob, err := idx.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var back fairindex.Index
		if err := back.UnmarshalBinary(blob); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmarks for the core primitives.

func BenchmarkFairSplitScan(b *testing.B) {
	ds, err := fullLA()
	if err != nil {
		b.Fatal(err)
	}
	cells := ds.Cells()
	dev := make([]float64, len(cells))
	for i := range dev {
		dev[i] = float64(i%13)/13 - 0.5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kdtree.BuildFair(ds.Grid, cells, dev, kdtree.Config{Height: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCellSums(b *testing.B) {
	ds, err := fullLA()
	if err != nil {
		b.Fatal(err)
	}
	cells := ds.Cells()
	dev := make([]float64, len(cells))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kdtree.NewCellSums(ds.Grid, cells, dev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLogRegFit(b *testing.B) {
	ds, err := fullLA()
	if err != nil {
		b.Fatal(err)
	}
	X := make([][]float64, ds.Len())
	y := make([]int, ds.Len())
	for i := range ds.Records {
		X[i] = ds.Records[i].X
		y[i] = ds.Records[i].Labels[0]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := ml.NewLogReg()
		if err := m.Fit(X, y, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegistryLookup measures the multi-index catalog's request
// hot path: resolving a resident entry by name must stay one atomic
// snapshot load plus a map read plus an atomic entry load — no lock.
// Watched by cmd/benchgate: a mutex sneaking onto this path is an
// order-of-magnitude regression under contention and fails CI.
func BenchmarkRegistryLookup(b *testing.B) {
	idx, err := fullIndex()
	if err != nil {
		b.Fatal(err)
	}
	reg := registry.New()
	names := []string{"la-fair-h8", "la-zipcode", "la-quadtree", "houston-fair"}
	for _, name := range names {
		if err := reg.AddIndex(name, idx); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.Lookup(names[i&3]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegistryLookupParallel is the same hot path under
// GOMAXPROCS-way contention — the shape a loaded multi-tenant server
// actually sees. Lock-free resolution should scale near-linearly.
func BenchmarkRegistryLookupParallel(b *testing.B) {
	idx, err := fullIndex()
	if err != nil {
		b.Fatal(err)
	}
	reg := registry.New()
	names := []string{"la-fair-h8", "la-zipcode", "la-quadtree", "houston-fair"}
	for _, name := range names {
		if err := reg.AddIndex(name, idx); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := reg.Lookup(names[i&3]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

func BenchmarkENCEMetric(b *testing.B) {
	ds, err := fullLA()
	if err != nil {
		b.Fatal(err)
	}
	n := ds.Len()
	scores := make([]float64, n)
	labels := make([]int, n)
	groups := make([]int, n)
	for i := 0; i < n; i++ {
		scores[i] = float64(i%100) / 100
		labels[i] = i % 2
		groups[i] = i % 64
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fairindex.ENCE(scores, labels, groups, 64); err != nil {
			b.Fatal(err)
		}
	}
}
