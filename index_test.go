package fairindex_test

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"

	fairindex "fairindex"
)

// buildSmallIndex builds a reduced-LA index for the given options.
func buildSmallIndex(t *testing.T, opts ...fairindex.Option) (*fairindex.Index, *fairindex.Dataset) {
	t.Helper()
	ds := smallLA(t)
	idx, err := fairindex.Build(ds, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return idx, ds
}

func TestIndexBuildDefaults(t *testing.T) {
	idx, ds := buildSmallIndex(t)
	if idx.Method() != fairindex.MethodFairKD {
		t.Errorf("method = %v, want FairKD default", idx.Method())
	}
	if idx.Height() != 8 {
		t.Errorf("height = %d, want 8", idx.Height())
	}
	if idx.NumRegions() < 2 {
		t.Fatalf("regions = %d", idx.NumRegions())
	}
	if idx.DatasetName() != ds.Name {
		t.Errorf("dataset name = %q", idx.DatasetName())
	}
	if got, want := len(idx.FeatureNames()), ds.NumFeatures(); got != want {
		t.Errorf("feature names = %d, want %d", got, want)
	}
	rep, err := idx.Report(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ENCE < 0 || rep.ENCE > 1 {
		t.Errorf("stored ENCE = %v", rep.ENCE)
	}
	if _, err := idx.Report(99); !errors.Is(err, fairindex.ErrNoTask) {
		t.Errorf("Report(99) err = %v, want ErrNoTask", err)
	}
}

func TestIndexLocateMatchesPartition(t *testing.T) {
	idx, ds := buildSmallIndex(t, fairindex.WithMethod(fairindex.MethodFairKD), fairindex.WithHeight(5), fairindex.WithSeed(1))
	part := idx.Partition()
	for i, rec := range ds.Records {
		want, err := part.RegionOfCell(rec.Cell)
		if err != nil {
			t.Fatal(err)
		}
		got, err := idx.Locate(rec.Lat, rec.Lon)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("record %d: Locate = %d, partition region = %d", i, got, want)
		}
		gotCell, err := idx.LocateCell(rec.Cell)
		if err != nil {
			t.Fatal(err)
		}
		if gotCell != want {
			t.Fatalf("record %d: LocateCell = %d, want %d", i, gotCell, want)
		}
	}
}

func TestIndexLocateBatch(t *testing.T) {
	idx, ds := buildSmallIndex(t, fairindex.WithHeight(4))
	n := 50
	lats := make([]float64, n)
	lons := make([]float64, n)
	for i := 0; i < n; i++ {
		lats[i] = ds.Records[i].Lat
		lons[i] = ds.Records[i].Lon
	}
	regions, err := idx.LocateBatch(lats, lons)
	if err != nil {
		t.Fatal(err)
	}
	for i := range regions {
		single, err := idx.Locate(lats[i], lons[i])
		if err != nil {
			t.Fatal(err)
		}
		if regions[i] != single {
			t.Fatalf("point %d: batch %d != single %d", i, regions[i], single)
		}
	}
	if out, err := idx.LocateBatch(lats, lons[:n-1]); err == nil || out != nil {
		t.Errorf("length mismatch: out = %v, err = %v; want nil slice + error", out, err)
	}
}

// TestIndexLocateBatchPartialErrors pins the per-point error
// semantics: invalid points yield RegionInvalid at their positions
// and a joined error, while the rest of the batch still resolves.
func TestIndexLocateBatchPartialErrors(t *testing.T) {
	idx, ds := buildSmallIndex(t, fairindex.WithHeight(4))
	nan := math.NaN()
	lats := []float64{ds.Records[0].Lat, nan, ds.Records[1].Lat, math.Inf(1), ds.Records[2].Lat}
	lons := []float64{ds.Records[0].Lon, ds.Records[0].Lon, nan, ds.Records[1].Lon, ds.Records[2].Lon}
	regions, err := idx.LocateBatch(lats, lons)
	if err == nil {
		t.Fatal("expected a joined error for the invalid points")
	}
	if len(regions) != len(lats) {
		t.Fatalf("got %d regions for %d points", len(regions), len(lats))
	}
	for _, bad := range []int{1, 2, 3} {
		if regions[bad] != fairindex.RegionInvalid {
			t.Errorf("point %d: region %d, want RegionInvalid", bad, regions[bad])
		}
		if !strings.Contains(err.Error(), fmt.Sprintf("point %d", bad)) {
			t.Errorf("joined error misses point %d: %v", bad, err)
		}
	}
	for _, good := range []int{0, 4} {
		want, werr := idx.Locate(lats[good], lons[good])
		if werr != nil {
			t.Fatal(werr)
		}
		if regions[good] != want {
			t.Errorf("point %d: region %d, want %d despite sibling errors", good, regions[good], want)
		}
	}

	// An all-invalid flood keeps the joined error bounded.
	n := 10000
	floodLats := make([]float64, n)
	floodLons := make([]float64, n)
	for i := range floodLats {
		floodLats[i] = nan
	}
	regions, err = idx.LocateBatch(floodLats, floodLons)
	if err == nil {
		t.Fatal("expected error for all-invalid batch")
	}
	if len(err.Error()) > 4096 {
		t.Errorf("joined error not bounded: %d bytes", len(err.Error()))
	}
	for i, r := range regions {
		if r != fairindex.RegionInvalid {
			t.Fatalf("point %d: region %d, want RegionInvalid", i, r)
		}
	}
}

// TestIndexLocateBatchSharded forces the multi-worker path (GOMAXPROCS
// is pinned above 1 for the test) and verifies a large batch —
// including out-of-box and invalid points — is bit-identical to
// per-point Locate, with error indices unshifted by sharding.
func TestIndexLocateBatchSharded(t *testing.T) {
	idx, _ := buildSmallIndex(t, fairindex.WithHeight(5), fairindex.WithSeed(3))
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))

	box := idx.Box()
	latSpan := box.MaxLat - box.MinLat
	lonSpan := box.MaxLon - box.MinLon
	const n = 120000
	lats := make([]float64, n)
	lons := make([]float64, n)
	for i := range lats {
		// Deterministic pseudo-random spread, ~10% outside the box.
		f := float64(i%997) / 997
		g := float64(i%613) / 613
		lats[i] = box.MinLat + (f*1.2-0.1)*latSpan
		lons[i] = box.MinLon + (g*1.2-0.1)*lonSpan
	}
	badEvery := 30011 // a handful of invalid points across shards
	for i := 0; i < n; i += badEvery {
		lats[i] = math.NaN()
	}
	regions, err := idx.LocateBatch(lats, lons)
	if err == nil {
		t.Fatal("expected joined error for the injected NaN points")
	}
	if len(regions) != n {
		t.Fatalf("got %d regions for %d points", len(regions), n)
	}
	for i := range regions {
		want, werr := idx.Locate(lats[i], lons[i])
		if werr != nil {
			if regions[i] != fairindex.RegionInvalid {
				t.Fatalf("point %d: region %d, want RegionInvalid", i, regions[i])
			}
			continue
		}
		if regions[i] != want {
			t.Fatalf("point %d: batch %d != single %d", i, regions[i], want)
		}
	}
	// Error indices are global, not shard-local.
	if !strings.Contains(err.Error(), fmt.Sprintf("point %d", badEvery)) {
		t.Errorf("joined error misses global point index %d: %v", badEvery, err)
	}

	// LocateBatchInto reuses the buffer and rejects a wrong-size one.
	if err := idx.LocateBatchInto(regions, lats, lons); err == nil {
		t.Error("expected joined error from LocateBatchInto as well")
	}
	if err := idx.LocateBatchInto(regions[:n-1], lats, lons); err == nil {
		t.Error("expected destination-size error")
	}
}

func TestIndexLocateClampsAndRejectsNonFinite(t *testing.T) {
	idx, _ := buildSmallIndex(t, fairindex.WithHeight(3))
	box := idx.Box()
	// Far outside the box clamps to a border region, never errors.
	if _, err := idx.Locate(box.MinLat-10, box.MinLon-10); err != nil {
		t.Errorf("clamped locate: %v", err)
	}
	nan := 0.0
	nan = nan / nan
	if _, err := idx.Locate(nan, 0); err == nil {
		t.Error("expected error for NaN latitude")
	}
}

func TestIndexScoreInRange(t *testing.T) {
	for _, model := range []fairindex.ModelKind{
		fairindex.ModelLogReg, fairindex.ModelDecisionTree, fairindex.ModelNaiveBayes,
	} {
		idx, ds := buildSmallIndex(t, fairindex.WithHeight(4), fairindex.WithModel(model), fairindex.WithSeed(2))
		for i := 0; i < 25; i++ {
			s, err := idx.Score(ds.Records[i], 0)
			if err != nil {
				t.Fatal(err)
			}
			if s < 0 || s > 1 {
				t.Fatalf("model %v record %d: score %v outside [0,1]", model, i, s)
			}
		}
		bad := ds.Records[0]
		bad.X = bad.X[:1]
		if _, err := idx.Score(bad, 0); err == nil {
			t.Error("expected feature-width error")
		}
	}
}

func TestIndexBinaryRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		opts []fairindex.Option
	}{
		{"fair-logreg", []fairindex.Option{fairindex.WithHeight(5), fairindex.WithSeed(1)}},
		{"fair-dtree-platt", []fairindex.Option{
			fairindex.WithHeight(4), fairindex.WithModel(fairindex.ModelDecisionTree),
			fairindex.WithPostProcess(fairindex.PostPlatt), fairindex.WithSeed(2)}},
		{"multi-objective", []fairindex.Option{
			fairindex.WithMethod(fairindex.MethodMultiObjectiveFairKD),
			fairindex.WithHeight(4), fairindex.WithAlphas(0.7, 0.3), fairindex.WithSeed(3)}},
		{"zipcode-isotonic", []fairindex.Option{
			fairindex.WithMethod(fairindex.MethodZipCode), fairindex.WithZipSites(12),
			fairindex.WithPostProcess(fairindex.PostIsotonic), fairindex.WithSeed(4)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			idx, ds := buildSmallIndex(t, tc.opts...)
			blob, err := idx.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			var back fairindex.Index
			if err := back.UnmarshalBinary(blob); err != nil {
				t.Fatal(err)
			}

			if back.NumRegions() != idx.NumRegions() {
				t.Fatalf("regions %d != %d", back.NumRegions(), idx.NumRegions())
			}
			if back.Method() != idx.Method() || back.Height() != idx.Height() || back.Model() != idx.Model() {
				t.Error("metadata mismatch after round trip")
			}
			if back.DatasetName() != idx.DatasetName() {
				t.Errorf("dataset name %q != %q", back.DatasetName(), idx.DatasetName())
			}

			// Identical Locate and Score outputs on every record.
			for i, rec := range ds.Records {
				r0, err := idx.Locate(rec.Lat, rec.Lon)
				if err != nil {
					t.Fatal(err)
				}
				r1, err := back.Locate(rec.Lat, rec.Lon)
				if err != nil {
					t.Fatal(err)
				}
				if r0 != r1 {
					t.Fatalf("record %d: Locate %d != %d after round trip", i, r1, r0)
				}
				for _, task := range idx.Tasks() {
					s0, err := idx.Score(rec, task)
					if err != nil {
						t.Fatal(err)
					}
					s1, err := back.Score(rec, task)
					if err != nil {
						t.Fatal(err)
					}
					if s0 != s1 {
						t.Fatalf("record %d task %d: Score %v != %v after round trip", i, task, s1, s0)
					}
				}
			}

			// Stored reports survive, including NaN-able ratio fields.
			for _, task := range idx.Tasks() {
				want, err := idx.Report(task)
				if err != nil {
					t.Fatal(err)
				}
				got, err := back.Report(task)
				if err != nil {
					t.Fatal(err)
				}
				if got.TaskName != want.TaskName || got.ENCE != want.ENCE || got.Accuracy != want.Accuracy {
					t.Errorf("task %d report changed: %+v vs %+v", task, got, want)
				}
				if len(got.TopNeighborhoods) != len(want.TopNeighborhoods) {
					t.Errorf("task %d: %d neighborhoods, want %d", task, len(got.TopNeighborhoods), len(want.TopNeighborhoods))
				}
			}
		})
	}
}

func TestIndexUnmarshalCorrupt(t *testing.T) {
	idx, _ := buildSmallIndex(t, fairindex.WithHeight(3))
	blob, err := idx.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]byte{nil, []byte("nope"), blob[:8], blob[:len(blob)-20],
		append(append([]byte(nil), blob...), 0xAB, 0xCD)} {
		var back fairindex.Index
		if err := back.UnmarshalBinary(bad); !errors.Is(err, fairindex.ErrIndexFormat) {
			t.Errorf("corrupt input %d bytes: err = %v, want ErrIndexFormat", len(bad), err)
		}
	}
	// Flipped version byte.
	vers := append([]byte(nil), blob...)
	vers[4] = 0x7E
	var back fairindex.Index
	if err := back.UnmarshalBinary(vers); !errors.Is(err, fairindex.ErrIndexFormat) {
		t.Errorf("bad version: err = %v, want ErrIndexFormat", err)
	}
}

// TestIndexConcurrentLookup proves the Index is safe for concurrent
// readers; run it under -race to catch data races on the hot path.
func TestIndexConcurrentLookup(t *testing.T) {
	idx, ds := buildSmallIndex(t, fairindex.WithHeight(5), fairindex.WithSeed(7))
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rec := ds.Records[(w*perWorker+i)%ds.Len()]
				if _, err := idx.Locate(rec.Lat, rec.Lon); err != nil {
					errs <- err
					return
				}
				if _, err := idx.Score(rec, 0); err != nil {
					errs <- err
					return
				}
				if _, err := idx.Report(0); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestBuildOptionValidation(t *testing.T) {
	ds := smallLA(t)
	cases := []struct {
		name string
		opts []fairindex.Option
	}{
		{"negative height", []fairindex.Option{fairindex.WithHeight(-1)}},
		{"negative task", []fairindex.Option{fairindex.WithTask(-2)}},
		{"bad test frac", []fairindex.Option{fairindex.WithTestFrac(1.5)}},
		{"zero test frac", []fairindex.Option{fairindex.WithTestFrac(0)}},
		{"empty alphas", []fairindex.Option{fairindex.WithAlphas()}},
		{"alphas on single-objective", []fairindex.Option{
			fairindex.WithMethod(fairindex.MethodFairKD), fairindex.WithAlphas(0.5, 0.5)}},
		{"bad zip sites", []fairindex.Option{fairindex.WithZipSites(0)}},
		{"bad ece bins", []fairindex.Option{fairindex.WithECEBins(-3)}},
		{"bad post process", []fairindex.Option{fairindex.WithPostProcess(fairindex.PostProcess(9))}},
		{"nil option", []fairindex.Option{nil}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := fairindex.Build(ds, tc.opts...); !errors.Is(err, fairindex.ErrConfig) {
				t.Errorf("err = %v, want ErrConfig", err)
			}
		})
	}
}

func TestBuildWithConfigBridge(t *testing.T) {
	ds := smallLA(t)
	cfg := fairindex.Config{Method: fairindex.MethodMedianKD, Height: 4, Seed: 9}
	idx, err := fairindex.Build(ds, fairindex.WithConfig(cfg), fairindex.WithHeight(3))
	if err != nil {
		t.Fatal(err)
	}
	if idx.Method() != fairindex.MethodMedianKD {
		t.Errorf("method = %v", idx.Method())
	}
	if idx.Height() != 3 {
		t.Errorf("height = %d, want the later option to win", idx.Height())
	}
}

// TestRunMatchesBuildReport pins the compatibility shim: Run must
// report exactly what Build stores.
func TestRunMatchesBuildReport(t *testing.T) {
	ds := smallLA(t)
	cfg := fairindex.Config{Method: fairindex.MethodFairKD, Height: 5, Seed: 1}
	res, err := fairindex.Run(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := fairindex.Build(ds, fairindex.WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := idx.Report(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ENCE != res.Tasks[0].ENCE || rep.Accuracy != res.Tasks[0].Accuracy || rep.AUC != res.Tasks[0].AUC {
		t.Errorf("Build report %+v diverges from Run %+v", rep, res.Tasks[0])
	}
	if idx.NumRegions() != res.NumRegions {
		t.Errorf("regions %d != %d", idx.NumRegions(), res.NumRegions)
	}
}
