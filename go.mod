module fairindex

go 1.24
