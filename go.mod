module fairindex

go 1.23
