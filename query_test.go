package fairindex_test

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	fairindex "fairindex"
)

// queryConfigs are the partition shapes the query property tests run
// against: tree partitions (solid rectangular regions, the fast
// RangeQuery path), a Voronoi partition (ragged regions, the cell-scan
// path) and a quadtree.
func queryConfigs() map[string][]fairindex.Option {
	return map[string][]fairindex.Option{
		"fair-h6": {fairindex.WithHeight(6), fairindex.WithSeed(1)},
		"zipcode": {fairindex.WithMethod(fairindex.MethodZipCode),
			fairindex.WithZipSites(12), fairindex.WithSeed(2)},
		"quadtree": {fairindex.WithMethod(fairindex.MethodFairQuadtree),
			fairindex.WithHeight(4), fairindex.WithSeed(3)},
	}
}

// randomBox samples a query rectangle overlapping (or deliberately
// missing) the index's bounding box, occasionally degenerate.
func randomBox(rng *rand.Rand, box fairindex.BBox) fairindex.BBox {
	latSpan := box.MaxLat - box.MinLat
	lonSpan := box.MaxLon - box.MinLon
	sample := func(lo, span float64) float64 { return lo - 0.3*span + rng.Float64()*1.6*span }
	lat0, lat1 := sample(box.MinLat, latSpan), sample(box.MinLat, latSpan)
	lon0, lon1 := sample(box.MinLon, lonSpan), sample(box.MinLon, lonSpan)
	if lat1 < lat0 {
		lat0, lat1 = lat1, lat0
	}
	if lon1 < lon0 {
		lon0, lon1 = lon1, lon0
	}
	if rng.Intn(10) == 0 { // degenerate: a point query
		lat1, lon1 = lat0, lon0
	}
	return fairindex.BBox{MinLat: lat0, MinLon: lon0, MaxLat: lat1, MaxLon: lon1}
}

// bruteRangeQuery independently reimplements the documented range
// semantics with a full cell scan: clamp the window's corner cells,
// tally every cell in between through LocateCell.
func bruteRangeQuery(t *testing.T, idx *fairindex.Index, q fairindex.BBox) []fairindex.RegionOverlap {
	t.Helper()
	box, grid := idx.Box(), idx.Grid()
	if q.MaxLat < box.MinLat || q.MinLat > box.MaxLat ||
		q.MaxLon < box.MinLon || q.MinLon > box.MaxLon {
		return nil
	}
	m, err := fairindex.NewMapper(grid, box)
	if err != nil {
		t.Fatal(err)
	}
	sw := m.CellOf(q.MinLat, q.MinLon)
	ne := m.CellOf(q.MaxLat, q.MaxLon)
	counts := make([]int, idx.NumRegions())
	for row := sw.Row; row <= ne.Row; row++ {
		for col := sw.Col; col <= ne.Col; col++ {
			region, err := idx.LocateCell(fairindex.Cell{Row: row, Col: col})
			if err != nil {
				t.Fatal(err)
			}
			counts[region]++
		}
	}
	var out []fairindex.RegionOverlap
	for region, cells := range counts {
		if cells == 0 {
			continue
		}
		total, err := idx.RegionCells(region)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, fairindex.RegionOverlap{
			Region:   region,
			Cells:    cells,
			Fraction: float64(cells) / float64(total),
		})
	}
	return out
}

func TestRangeQueryMatchesBruteForce(t *testing.T) {
	for name, opts := range queryConfigs() {
		t.Run(name, func(t *testing.T) {
			idx, _ := buildSmallIndex(t, opts...)
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 120; i++ {
				q := randomBox(rng, idx.Box())
				got, err := idx.RangeQuery(q)
				if err != nil {
					t.Fatalf("query %d (%+v): %v", i, q, err)
				}
				want := bruteRangeQuery(t, idx, q)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("query %d (%+v):\n got %v\nwant %v", i, q, got, want)
				}
			}
		})
	}
}

func TestRangeQueryFullAndEmptyWindows(t *testing.T) {
	idx, _ := buildSmallIndex(t, fairindex.WithHeight(5))
	box := idx.Box()

	full, err := idx.RangeQuery(box)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != idx.NumRegions() {
		t.Fatalf("full-box query hit %d of %d regions", len(full), idx.NumRegions())
	}
	totalCells := 0
	for i, ov := range full {
		if ov.Region != i {
			t.Fatalf("results not ordered by region id: %v at %d", ov, i)
		}
		if ov.Fraction != 1 {
			t.Errorf("region %d fraction %v, want 1 for a full-box query", ov.Region, ov.Fraction)
		}
		totalCells += ov.Cells
	}
	if totalCells != idx.Grid().NumCells() {
		t.Errorf("full-box query covers %d of %d cells", totalCells, idx.Grid().NumCells())
	}

	// A point window resolves to exactly the enclosing region.
	lat := (box.MinLat + box.MaxLat) / 2
	lon := (box.MinLon + box.MaxLon) / 2
	pt, err := idx.RangeQuery(fairindex.BBox{MinLat: lat, MinLon: lon, MaxLat: lat, MaxLon: lon})
	if err != nil {
		t.Fatal(err)
	}
	region, err := idx.Locate(lat, lon)
	if err != nil {
		t.Fatal(err)
	}
	if len(pt) != 1 || pt[0].Region != region || pt[0].Cells != 1 {
		t.Fatalf("point query = %v, want single-cell overlap with region %d", pt, region)
	}

	// Strictly outside the box: empty result, not an error.
	out, err := idx.RangeQuery(fairindex.BBox{
		MinLat: box.MaxLat + 1, MinLon: box.MinLon,
		MaxLat: box.MaxLat + 2, MaxLon: box.MaxLon,
	})
	if err != nil || out != nil {
		t.Fatalf("outside query = %v, %v; want nil, nil", out, err)
	}
}

func TestRangeQueryRejectsMalformedWindows(t *testing.T) {
	idx, _ := buildSmallIndex(t, fairindex.WithHeight(4))
	box := idx.Box()
	bad := []fairindex.BBox{
		{MinLat: box.MaxLat, MinLon: box.MinLon, MaxLat: box.MinLat, MaxLon: box.MaxLon}, // inverted lat
		{MinLat: box.MinLat, MinLon: box.MaxLon, MaxLat: box.MaxLat, MaxLon: box.MinLon}, // inverted lon
		{MinLat: math.NaN(), MinLon: box.MinLon, MaxLat: box.MaxLat, MaxLon: box.MaxLon},
		{MinLat: box.MinLat, MinLon: math.Inf(-1), MaxLat: box.MaxLat, MaxLon: box.MaxLon},
	}
	for _, q := range bad {
		if _, err := idx.RangeQuery(q); !errors.Is(err, fairindex.ErrQuery) {
			t.Errorf("RangeQuery(%+v) err = %v, want ErrQuery", q, err)
		}
	}
}

// bruteNearest independently recomputes the k nearest centroids with
// a full sorted scan, using the same degree-space distance formula.
func bruteNearest(t *testing.T, idx *fairindex.Index, lat, lon float64, k int) []fairindex.RegionDistance {
	t.Helper()
	box := idx.Box()
	type cand struct {
		d2     float64
		region int
	}
	cands := make([]cand, idx.NumRegions())
	for region := range cands {
		c, err := idx.Centroid(region)
		if err != nil {
			t.Fatal(err)
		}
		cLat := box.MinLat + c[0]*(box.MaxLat-box.MinLat)
		cLon := box.MinLon + c[1]*(box.MaxLon-box.MinLon)
		dLat, dLon := lat-cLat, lon-cLon
		cands[region] = cand{d2: dLat*dLat + dLon*dLon, region: region}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].d2 != cands[b].d2 {
			return cands[a].d2 < cands[b].d2
		}
		return cands[a].region < cands[b].region
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]fairindex.RegionDistance, k)
	for i, c := range cands[:k] {
		out[i] = fairindex.RegionDistance{Region: c.region, Distance: math.Sqrt(c.d2)}
	}
	return out
}

func TestNearestRegionsMatchesBruteForce(t *testing.T) {
	for name, opts := range queryConfigs() {
		t.Run(name, func(t *testing.T) {
			idx, _ := buildSmallIndex(t, opts...)
			box := idx.Box()
			rng := rand.New(rand.NewSource(11))
			latSpan := box.MaxLat - box.MinLat
			lonSpan := box.MaxLon - box.MinLon
			for i := 0; i < 150; i++ {
				lat := box.MinLat - 0.4*latSpan + rng.Float64()*1.8*latSpan
				lon := box.MinLon - 0.4*lonSpan + rng.Float64()*1.8*lonSpan
				k := 1 + rng.Intn(idx.NumRegions()+2) // sometimes > NumRegions
				got, err := idx.NearestRegions(lat, lon, k)
				if err != nil {
					t.Fatalf("point %d: %v", i, err)
				}
				want := bruteNearest(t, idx, lat, lon, k)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("point %d (%.5f, %.5f) k=%d:\n got %v\nwant %v", i, lat, lon, k, got, want)
				}
			}
		})
	}
}

func TestNearestRegionsRejectsBadArguments(t *testing.T) {
	idx, _ := buildSmallIndex(t, fairindex.WithHeight(4))
	if _, err := idx.NearestRegions(34, -118, 0); !errors.Is(err, fairindex.ErrQuery) {
		t.Errorf("k=0 err = %v, want ErrQuery", err)
	}
	if _, err := idx.NearestRegions(34, -118, -3); !errors.Is(err, fairindex.ErrQuery) {
		t.Errorf("k=-3 err = %v, want ErrQuery", err)
	}
	if _, err := idx.NearestRegions(math.NaN(), -118, 1); !errors.Is(err, fairindex.ErrQuery) {
		t.Errorf("NaN lat err = %v, want ErrQuery", err)
	}
	if _, err := idx.NearestRegions(34, math.Inf(1), 1); !errors.Is(err, fairindex.ErrQuery) {
		t.Errorf("Inf lon err = %v, want ErrQuery", err)
	}
	got, err := idx.NearestRegions(34, -118, idx.NumRegions()+100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != idx.NumRegions() {
		t.Errorf("oversized k returned %d regions, want all %d", len(got), idx.NumRegions())
	}
}

func TestGroupStatsFullWindowMatchesReport(t *testing.T) {
	idx, ds := buildSmallIndex(t, fairindex.WithHeight(5))
	rep, err := idx.Report(0)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, idx.NumRegions())
	for i := range all {
		all[i] = i
	}
	ws, err := idx.GroupStats(0, all)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Count != len(ds.Records) {
		t.Errorf("full-window population %d, want %d", ws.Count, len(ds.Records))
	}
	if ws.ENCE != rep.ENCE {
		t.Errorf("full-window ENCE %v != report ENCE %v", ws.ENCE, rep.ENCE)
	}
	if len(ws.Regions) != idx.NumRegions() {
		t.Fatalf("per-region detail holds %d of %d regions", len(ws.Regions), idx.NumRegions())
	}
	// Per-region entries must agree with the stored top-neighborhood
	// report wherever the two overlap (same sufficient statistics).
	for _, nr := range rep.TopNeighborhoods {
		rs := ws.Regions[nr.Group]
		if rs.Region != nr.Group || rs.Count != nr.Count {
			t.Fatalf("region %d: stat %+v vs report %+v", nr.Group, rs, nr)
		}
		if rs.MeanConf != nr.MeanConf || rs.PosRate != nr.PosRate || rs.Miscal != nr.Miscal {
			t.Errorf("region %d: stat %+v disagrees with report %+v", nr.Group, rs, nr)
		}
		if !(math.IsNaN(rs.CalRatio) && math.IsNaN(nr.Ratio)) && rs.CalRatio != nr.Ratio {
			t.Errorf("region %d: ratio %v vs %v", nr.Group, rs.CalRatio, nr.Ratio)
		}
	}
}

func TestGroupStatsWindows(t *testing.T) {
	idx, _ := buildSmallIndex(t, fairindex.WithHeight(5))
	n := idx.NumRegions()
	var a, b []int
	for i := 0; i < n; i++ {
		if i < n/2 {
			a = append(a, i)
		} else {
			b = append(b, i)
		}
	}
	wa, err := idx.GroupStats(0, a)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := idx.GroupStats(0, b)
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([]int(nil), a...), b...)
	wall, err := idx.GroupStats(0, all)
	if err != nil {
		t.Fatal(err)
	}
	if wa.Count+wb.Count != wall.Count {
		t.Errorf("window populations not additive: %d + %d != %d", wa.Count, wb.Count, wall.Count)
	}

	// Region order in the request must not matter.
	rev := make([]int, len(a))
	for i, r := range a {
		rev[len(a)-1-i] = r
	}
	wrev, err := idx.GroupStats(0, rev)
	if err != nil {
		t.Fatal(err)
	}
	// Compare via formatting: NaN calibration ratios are legitimate
	// and would defeat DeepEqual.
	if fmt.Sprintf("%+v", wa) != fmt.Sprintf("%+v", wrev) {
		t.Error("GroupStats depends on request order")
	}

	// Empty window: zero aggregates, undefined ratio.
	empty, err := idx.GroupStats(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Count != 0 || empty.ENCE != 0 || !math.IsNaN(empty.CalRatio) {
		t.Errorf("empty window = %+v, want zero counts and NaN ratio", empty)
	}
}

func TestGroupStatsRejectsBadWindows(t *testing.T) {
	idx, _ := buildSmallIndex(t, fairindex.WithHeight(4))
	if _, err := idx.GroupStats(0, []int{0, 0}); !errors.Is(err, fairindex.ErrQuery) {
		t.Errorf("duplicate region err = %v, want ErrQuery", err)
	}
	if _, err := idx.GroupStats(0, []int{-1}); !errors.Is(err, fairindex.ErrQuery) {
		t.Errorf("negative region err = %v, want ErrQuery", err)
	}
	if _, err := idx.GroupStats(0, []int{idx.NumRegions()}); !errors.Is(err, fairindex.ErrQuery) {
		t.Errorf("out-of-range region err = %v, want ErrQuery", err)
	}
	if _, err := idx.GroupStats(99, []int{0}); !errors.Is(err, fairindex.ErrNoTask) {
		t.Errorf("unknown task err = %v, want ErrNoTask", err)
	}
}

// TestQueryRoundTrip pins that the serialized acceleration structures
// and region stats reproduce bit-identical query results after a
// marshal/unmarshal cycle.
func TestQueryRoundTrip(t *testing.T) {
	idx, _ := buildSmallIndex(t,
		fairindex.WithHeight(5), fairindex.WithPostProcess(fairindex.PostPlatt))
	blob, err := idx.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back fairindex.Index
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(21))
	box := idx.Box()
	for i := 0; i < 40; i++ {
		q := randomBox(rng, box)
		r0, err0 := idx.RangeQuery(q)
		r1, err1 := back.RangeQuery(q)
		if err0 != nil || err1 != nil {
			t.Fatal(err0, err1)
		}
		if !reflect.DeepEqual(r0, r1) {
			t.Fatalf("RangeQuery diverged after round trip on %+v", q)
		}
		lat := box.MinLat + rng.Float64()*(box.MaxLat-box.MinLat)
		lon := box.MinLon + rng.Float64()*(box.MaxLon-box.MinLon)
		n0, err0 := idx.NearestRegions(lat, lon, 5)
		n1, err1 := back.NearestRegions(lat, lon, 5)
		if err0 != nil || err1 != nil {
			t.Fatal(err0, err1)
		}
		if !reflect.DeepEqual(n0, n1) {
			t.Fatalf("NearestRegions diverged after round trip at (%v, %v)", lat, lon)
		}
	}

	all := make([]int, idx.NumRegions())
	for i := range all {
		all[i] = i
	}
	w0, err := idx.GroupStats(0, all)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := back.GroupStats(0, all)
	if err != nil {
		t.Fatal(err)
	}
	// NaN ratios compare unequal under DeepEqual only if present on
	// one side; normalize by comparing field-wise through formatting.
	if w0.Count != w1.Count || w0.ENCE != w1.ENCE || w0.Miscal != w1.Miscal ||
		w0.MeanConf != w1.MeanConf || w0.PosRate != w1.PosRate {
		t.Fatalf("GroupStats diverged after round trip:\n%+v\n%+v", w0, w1)
	}
	if len(w0.Regions) != len(w1.Regions) {
		t.Fatal("per-region detail length diverged")
	}
	for i := range w0.Regions {
		a, b := w0.Regions[i], w1.Regions[i]
		if a.Region != b.Region || a.Count != b.Count || a.MeanConf != b.MeanConf ||
			a.PosRate != b.PosRate || a.Miscal != b.Miscal {
			t.Fatalf("region stat %d diverged: %+v vs %+v", i, a, b)
		}
		if (math.IsNaN(a.CalRatio) != math.IsNaN(b.CalRatio)) ||
			(!math.IsNaN(a.CalRatio) && a.CalRatio != b.CalRatio) {
			t.Fatalf("region %d ratio diverged: %v vs %v", a.Region, a.CalRatio, b.CalRatio)
		}
	}
}
