package fairindex

import (
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sync"
	"time"

	"fairindex/internal/binenc"
	"fairindex/internal/calib"
	"fairindex/internal/dataset"
	"fairindex/internal/geo"
	"fairindex/internal/ml"
	"fairindex/internal/partition"
	"fairindex/internal/pipeline"
)

// Index is the build-once / query-many artifact of the library: a
// fairness-aware spatial index bundling the neighborhood partition,
// the trained per-task classifiers (plus any fitted post-processing
// calibrators), the region centroids and the build-time metric
// reports.
//
// An Index is safe for concurrent use by multiple goroutines without
// locking: Locate, LocateBatch, Score and Report only read, and the
// one mutable corner — the live per-region statistics AppendBatch
// folds new records into (maintain.go) — publishes immutable
// snapshots behind an atomic pointer, so queries never block behind
// appends. The partition, models and calibrators never change after
// Build or UnmarshalBinary. Point lookup is O(1) — a precomputed
// cell→region table, no tree walk on the hot path.
//
// Build an Index offline, persist it with MarshalBinary, ship the
// bytes to a server and load them with UnmarshalBinary; the restored
// Index reproduces bit-identical Locate and Score outputs.
type Index struct {
	cfg          Config // defaults resolved
	datasetName  string
	featureNames []string
	taskNames    []string

	grid   geo.Grid
	box    geo.BBox
	mapper geo.Mapper

	part       *partition.Partition
	cellRegion []int // row-major cell index -> region id (hot path)
	numRegions int
	centroids  [][2]float64
	encoding   Encoding // resolved final-training encoding

	// Query acceleration (see query.go): per-region bounding
	// rectangles and cell counts for pruned RangeQuery, and the
	// centroid kd-tree layout for NearestRegions. Derived at Build
	// time, carried by the v2 codec, recomputed when loading v1 files.
	regionRects []geo.CellRect
	regionCells []int
	knnOrder    []int

	tasks []indexTask

	// maint is the one mutable corner of the Index: the live
	// per-region statistics AppendBatch folds new records into, plus
	// the drift threshold. It is a pointer (not an embedded struct)
	// so Index values remain copyable; queries read it lock-free via
	// atomic snapshots. See maintain.go.
	maint *maintState

	// codecVersion is the serialization version the Index came from:
	// the version tag of the artifact UnmarshalBinary decoded, or
	// indexVersion (what MarshalBinary writes) for a freshly built
	// Index.
	codecVersion int

	buildTime, trainTime time.Duration
	// Build-box observability, not serialized: the training worker
	// pool size and the summed per-task training durations.
	trainWorkers int
	trainCPUTime time.Duration
}

// indexTask is one task's serving bundle.
type indexTask struct {
	task   int
	model  ml.Classifier
	post   []ml.ScoreCalibrator // nil when no post-processing
	report TaskResult
	// stats holds the final model's per-region calibration sufficient
	// statistics (indexed by region id), backing GroupStats. Nil on an
	// index restored from a pre-v2 artifact.
	stats []calib.SuffStats
}

// Index errors.
var (
	// ErrIndexFormat reports bytes that are not a valid serialized
	// Index (wrong magic, unsupported version or corrupt payload).
	ErrIndexFormat = errors.New("fairindex: invalid index encoding")
	// ErrNoTask reports a task id the Index was not built for.
	ErrNoTask = errors.New("fairindex: task not in index")
)

// Build constructs an Index for the dataset: it partitions the city
// with the configured fairness-aware method, trains the final
// classifier(s) over the resulting neighborhoods and packages
// everything into a reusable serving artifact. With no options it
// builds the paper's Fair KD-tree at height 8.
func Build(ds *Dataset, opts ...Option) (*Index, error) {
	cfg, err := resolveOptions(opts)
	if err != nil {
		return nil, err
	}
	art, err := pipeline.Build(ds, cfg)
	if err != nil {
		return nil, err
	}
	return newIndex(ds, art)
}

// newIndex assembles the serving artifact from trained pipeline
// output.
func newIndex(ds *Dataset, art *pipeline.Artifacts) (*Index, error) {
	mapper, err := geo.NewMapper(ds.Grid, ds.Box)
	if err != nil {
		return nil, fmt.Errorf("fairindex: index needs a dataset with a valid bounding box: %w", err)
	}
	ix := &Index{
		cfg:          art.Config,
		datasetName:  ds.Name,
		featureNames: append([]string(nil), ds.FeatureNames...),
		taskNames:    append([]string(nil), ds.TaskNames...),
		grid:         ds.Grid,
		box:          ds.Box,
		mapper:       mapper,
		part:         art.Partition,
		cellRegion:   art.Partition.CellRegions(),
		numRegions:   art.Partition.NumRegions(),
		centroids:    art.Partition.Centroids(),
		encoding:     art.Config.Encoding.Resolve(),
		codecVersion: indexVersion,
		buildTime:    art.BuildTime,
		trainTime:    art.TrainTime,
		trainWorkers: art.TrainWorkers,
		trainCPUTime: art.TaskCPUTime(),
	}
	ix.buildAccel()
	for _, tt := range art.Tasks {
		ix.tasks = append(ix.tasks, indexTask{
			task:   tt.Report.Task,
			model:  tt.Model,
			post:   tt.Post,
			report: tt.Report,
			stats:  append([]calib.SuffStats(nil), tt.RegionStats...),
		})
	}
	ix.initMaint(art.Config.DriftThreshold)
	// Per-metric thresholds layer on top of the legacy ENCE one; the
	// names and values were validated by the pipeline config.
	for name, t := range art.Config.DriftThresholds {
		if err := ix.setThreshold(name, t); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// ReadIndex reads a serialized Index (the .fidx byte stream written
// by MarshalBinary) from r until EOF and restores it. It is the
// loading entry point for servers and registries that stream
// artifacts from files, object stores or network connections:
//
//	f, _ := os.Open("city.fidx")
//	idx, err := fairindex.ReadIndex(f)
//
// On any error the returned Index is nil; a partially read stream
// never produces a usable artifact.
func ReadIndex(r io.Reader) (*Index, error) {
	blob, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("fairindex: reading index: %w", err)
	}
	ix := new(Index)
	if err := ix.UnmarshalBinary(blob); err != nil {
		return nil, err
	}
	return ix, nil
}

// LoadIndex reads a serialized Index from a .fidx file.
func LoadIndex(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fairindex: %w", err)
	}
	defer f.Close()
	ix, err := ReadIndex(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ix, nil
}

// RegionInvalid is the sentinel neighborhood id stored by LocateBatch
// and returned by Locate for a point that cannot be located
// (non-finite coordinates). Valid region ids are always >= 0.
const RegionInvalid = -1

// Locate maps a geographic coordinate to its neighborhood id in
// [0, NumRegions). Coordinates on or outside the bounding box clamp
// to the nearest border cell, matching record ingestion; non-finite
// coordinates return RegionInvalid and an error. O(1): one table
// lookup, no tree walk.
func (ix *Index) Locate(lat, lon float64) (int, error) {
	if math.IsNaN(lat) || math.IsInf(lat, 0) || math.IsNaN(lon) || math.IsInf(lon, 0) {
		return RegionInvalid, fmt.Errorf("fairindex: non-finite coordinate (%v, %v)", lat, lon)
	}
	c := ix.mapper.CellOf(lat, lon)
	return ix.cellRegion[ix.grid.Index(c)], nil
}

// Batch sharding thresholds: batches below shardMinBatch points stay
// on the caller's goroutine, and each worker gets at least
// shardMinPoints points so small batches are not drowned in goroutine
// overhead.
const (
	shardMinBatch  = 16384
	shardMinPoints = 4096
)

// maxBatchPointErrors bounds how many per-point errors a batch keeps
// verbatim; beyond it the joined error summarizes the remainder, so a
// hostile million-NaN batch cannot balloon memory.
const maxBatchPointErrors = 8

// LocateBatch maps coordinate slices to neighborhood ids into a fresh
// slice. lats and lons must have equal length.
//
// Unlike looping over Locate, a batch never aborts mid-slice: every
// valid point is resolved, each invalid (non-finite) point yields
// RegionInvalid at its position, and the returned error joins the
// per-point failures (nil when every point resolved). The returned
// slice is complete even when err != nil; only a length mismatch
// returns a nil slice.
//
// Large batches are sharded across GOMAXPROCS worker goroutines —
// results are independent of the sharding, bit-identical to Locate.
func (ix *Index) LocateBatch(lats, lons []float64) ([]int, error) {
	if len(lats) != len(lons) {
		return nil, fmt.Errorf("fairindex: %d latitudes vs %d longitudes", len(lats), len(lons))
	}
	out := make([]int, len(lats))
	return out, ix.LocateBatchInto(out, lats, lons)
}

// LocateBatchInto is LocateBatch writing into a caller-provided slice,
// for servers that recycle result buffers on the hot path. dst, lats
// and lons must have equal length; semantics otherwise match
// LocateBatch.
func (ix *Index) LocateBatchInto(dst []int, lats, lons []float64) error {
	if len(lats) != len(lons) {
		return fmt.Errorf("fairindex: %d latitudes vs %d longitudes", len(lats), len(lons))
	}
	if len(dst) != len(lats) {
		return fmt.Errorf("fairindex: destination holds %d regions for %d points", len(dst), len(lats))
	}
	n := len(lats)
	workers := runtime.GOMAXPROCS(0)
	if n >= shardMinBatch && workers > 1 {
		if byPoints := n / shardMinPoints; byPoints < workers {
			workers = byPoints
		}
		return ix.locateSharded(dst, lats, lons, workers)
	}
	return ix.locateRange(dst, lats, lons, 0)
}

// locateSharded fans a batch out over contiguous shards, one worker
// goroutine each. The Index is immutable, so workers share it without
// locking; per-shard errors are joined in shard order.
func (ix *Index) locateSharded(dst []int, lats, lons []float64, workers int) error {
	n := len(lats)
	chunk := (n + workers - 1) / workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = ix.locateRange(dst[lo:hi], lats[lo:hi], lons[lo:hi], lo)
		}(w, lo, hi)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// locateRange is the batch hot loop: the mapper arithmetic of
// Mapper.CellOf inlined with the grid geometry hoisted out of the
// loop. The cell expression keeps CellOf's exact operation order so
// batch results stay bit-identical to per-point Locate. base offsets
// point indices in error messages when called on a shard.
func (ix *Index) locateRange(dst []int, lats, lons []float64, base int) error {
	u, v := ix.grid.U, ix.grid.V
	uF, vF := float64(u), float64(v)
	minLat, minLon := ix.box.MinLat, ix.box.MinLon
	latSpan := ix.box.MaxLat - minLat
	lonSpan := ix.box.MaxLon - minLon
	table := ix.cellRegion
	var errs []error
	invalid := 0
	for i, lat := range lats {
		lon := lons[i]
		// x−x is 0 exactly when x is finite (NaN and ±Inf both yield
		// NaN), so this one branch is Locate's four predicate checks.
		if lat-lat != 0 || lon-lon != 0 {
			dst[i] = RegionInvalid
			invalid++
			if len(errs) < maxBatchPointErrors {
				errs = append(errs, fmt.Errorf("fairindex: point %d: non-finite coordinate (%v, %v)", base+i, lat, lon))
			}
			continue
		}
		row := int(uF * (lat - minLat) / latSpan)
		col := int(vF * (lon - minLon) / lonSpan)
		if row < 0 {
			row = 0
		} else if row >= u {
			row = u - 1
		}
		if col < 0 {
			col = 0
		} else if col >= v {
			col = v - 1
		}
		dst[i] = table[row*v+col]
	}
	if invalid > len(errs) {
		errs = append(errs, fmt.Errorf("fairindex: %d further invalid points", invalid-len(errs)))
	}
	return errors.Join(errs...)
}

// LocateCell maps a grid cell directly to its neighborhood id.
func (ix *Index) LocateCell(c Cell) (int, error) {
	if !ix.grid.InBounds(c) {
		return 0, fmt.Errorf("fairindex: cell %v outside %v", c, ix.grid)
	}
	return ix.cellRegion[ix.grid.Index(c)], nil
}

// taskByID returns the serving bundle for a task id.
func (ix *Index) taskByID(task int) (*indexTask, error) {
	slot, err := ix.taskSlot(task)
	if err != nil {
		return nil, err
	}
	return &ix.tasks[slot], nil
}

// taskSlot maps a task id to its position in ix.tasks (and in the
// maintenance snapshots, which are indexed by slot).
func (ix *Index) taskSlot(task int) (int, error) {
	for i := range ix.tasks {
		if ix.tasks[i].task == task {
			return i, nil
		}
	}
	return -1, fmt.Errorf("%w: task %d (have %v)", ErrNoTask, task, ix.Tasks())
}

// Score runs one individual through the task's final model: the
// record is located via its coordinates, encoded with the index's
// neighborhood encoding and scored; per-neighborhood post-processing
// calibrators (when the index was built with WithPostProcess) are
// applied. The record's feature vector must match FeatureNames.
func (ix *Index) Score(rec Record, task int) (float64, error) {
	it, err := ix.taskByID(task)
	if err != nil {
		return 0, err
	}
	if len(rec.X) != len(ix.featureNames) {
		return 0, fmt.Errorf("fairindex: record has %d features, index was built on %d", len(rec.X), len(ix.featureNames))
	}
	region, err := ix.Locate(rec.Lat, rec.Lon)
	if err != nil {
		return 0, err
	}
	return ix.scoreInRegion(it, rec.X, region)
}

// scoreInRegion runs one feature vector through a task's final model
// and the region's post-processing calibrator — the serving tail
// shared by Score and AppendBatch.
func (ix *Index) scoreInRegion(it *indexTask, x []float64, region int) (float64, error) {
	row, err := dataset.EncodeRow(x, region, ix.numRegions, ix.centroids, ix.encoding)
	if err != nil {
		return 0, err
	}
	scores, err := it.model.PredictProba([][]float64{row})
	if err != nil {
		return 0, err
	}
	if it.post != nil {
		calibrated, err := it.post[region].Apply(scores)
		if err != nil {
			return 0, err
		}
		return calibrated[0], nil
	}
	return scores[0], nil
}

// Report returns the build-time metric report for a task, with one
// live exception: the ENCE field tracks the current per-region
// statistics, so it stays exact as AppendBatch folds new records in.
// Without appends the live value is bit-identical to the stored one
// (both fold the same per-region statistics in the same order); every
// other metric is the build-time evaluation.
func (ix *Index) Report(task int) (TaskResult, error) {
	slot, err := ix.taskSlot(task)
	if err != nil {
		return TaskResult{}, err
	}
	tr := ix.tasks[slot].report
	tr.ENCE = ix.liveENCE(slot)
	return tr, nil
}

// Method returns the partitioning strategy the index was built with.
func (ix *Index) Method() Method { return ix.cfg.Method }

// Height returns the configured tree height.
func (ix *Index) Height() int { return ix.cfg.Height }

// Model returns the classifier family of the final models.
func (ix *Index) Model() ModelKind { return ix.cfg.Model }

// NumRegions returns the number of neighborhoods.
func (ix *Index) NumRegions() int { return ix.numRegions }

// CodecVersion returns the .fidx serialization version the Index was
// restored from — indexVersion for a freshly built Index (that is
// what MarshalBinary writes), or the version tag of the decoded
// artifact (older versions load with reduced capabilities, e.g. v1
// has no stored region stats).
func (ix *Index) CodecVersion() int { return ix.codecVersion }

// Grid returns the base grid.
func (ix *Index) Grid() Grid { return ix.grid }

// Box returns the geographic bounding box.
func (ix *Index) Box() BBox { return ix.box }

// DatasetName returns the name of the dataset the index was built on.
func (ix *Index) DatasetName() string { return ix.datasetName }

// FeatureNames returns a copy of the feature schema Score expects.
func (ix *Index) FeatureNames() []string {
	return append([]string(nil), ix.featureNames...)
}

// TaskNames returns a copy of the dataset's task names.
func (ix *Index) TaskNames() []string {
	return append([]string(nil), ix.taskNames...)
}

// Tasks returns the task ids the index can Score and Report.
func (ix *Index) Tasks() []int {
	out := make([]int, len(ix.tasks))
	for i := range ix.tasks {
		out[i] = ix.tasks[i].task
	}
	return out
}

// Partition returns the underlying neighborhood partition.
func (ix *Index) Partition() *Partition { return ix.part }

// Centroid returns the normalized (row, col) centroid of a region.
func (ix *Index) Centroid(region int) ([2]float64, error) {
	if region < 0 || region >= ix.numRegions {
		return [2]float64{}, fmt.Errorf("fairindex: region %d out of range [0,%d)", region, ix.numRegions)
	}
	return ix.centroids[region], nil
}

// BuildTime returns the partition construction duration.
func (ix *Index) BuildTime() time.Duration { return ix.buildTime }

// TrainTime returns the final training + evaluation duration (wall
// clock; with multiple tasks the per-task work overlaps).
func (ix *Index) TrainTime() time.Duration { return ix.trainTime }

// TrainWorkers returns the worker-pool size the final training ran
// with (1 = sequential). Build-box observability only: 0 on an Index
// restored with UnmarshalBinary.
func (ix *Index) TrainWorkers() int { return ix.trainWorkers }

// TrainCPUTime returns the summed per-task training durations — the
// sequential cost the build's worker pool amortized; the ratio
// TrainCPUTime/TrainTime is the parallel speedup. Build-box
// observability only: 0 on an Index restored with UnmarshalBinary.
func (ix *Index) TrainCPUTime() time.Duration { return ix.trainCPUTime }

// Config returns the resolved build configuration (a copy).
func (ix *Index) Config() Config {
	cfg := ix.cfg
	cfg.Alphas = append([]float64(nil), cfg.Alphas...)
	return cfg
}

// Binary format of a serialized Index. The version gate means later
// layout changes only need a new version constant plus a decode
// branch; v2 layout (v2 additions marked):
//
//	magic "FIDX" | uvarint version
//	config (method, height, model, encoding, task, alphas,
//	        objective, lambda, testFrac, seed, zipSites, eceBins,
//	        reweight, postProcess)
//	dataset meta (name, feature names, task names)
//	bounding box (4 × float64, exact bits)
//	partition (grid, cell→region table, centroids — see
//	           partition.AppendBinary)
//	[v2] query acceleration (per-region bounding rects as 4 varints
//	     each, per-region cell counts, centroid kd-tree layout — see
//	     query.go)
//	timings (build, train — nanosecond varints)
//	tasks (id, model bytes, calibrators as a distinct-blob table +
//	       per-region references, metric report,
//	       [v2] per-region stats count + (count, Σ score, Σ label)
//	       triples backing GroupStats — 0 when absent)
//
// v1 files (no acceleration or stats sections) still load: the
// acceleration structures are recomputed from the partition and
// GroupStats reports ErrNoRegionStats.
var indexMagic = [4]byte{'F', 'I', 'D', 'X'}

// Serialization versions.
const (
	// indexVersion is the version MarshalBinary writes.
	indexVersion = 2
	// indexVersionV1 is the pre-query-engine layout, still decodable.
	indexVersionV1 = 1
)

// MarshalBinary implements encoding.BinaryMarshaler with the
// versioned compact layout above. Floats are stored bit-exact, so an
// unmarshaled Index reproduces identical Locate/Score outputs.
func (ix *Index) MarshalBinary() ([]byte, error) {
	b := append([]byte(nil), indexMagic[:]...)
	b = binenc.AppendUvarint(b, indexVersion)

	// Config.
	b = binenc.AppendVarint(b, int64(ix.cfg.Method))
	b = binenc.AppendVarint(b, int64(ix.cfg.Height))
	b = binenc.AppendVarint(b, int64(ix.cfg.Model))
	b = binenc.AppendVarint(b, int64(ix.cfg.Encoding))
	b = binenc.AppendVarint(b, int64(ix.cfg.Task))
	b = binenc.AppendFloat64s(b, ix.cfg.Alphas)
	b = binenc.AppendVarint(b, int64(ix.cfg.Objective))
	b = binenc.AppendFloat64(b, ix.cfg.Lambda)
	b = binenc.AppendFloat64(b, ix.cfg.TestFrac)
	b = binenc.AppendVarint(b, ix.cfg.Seed)
	b = binenc.AppendVarint(b, int64(ix.cfg.ZipSites))
	b = binenc.AppendVarint(b, int64(ix.cfg.ECEBins))
	b = binenc.AppendBool(b, ix.cfg.Reweight)
	b = binenc.AppendVarint(b, int64(ix.cfg.PostProcess))

	// Dataset metadata and geometry.
	b = binenc.AppendString(b, ix.datasetName)
	b = binenc.AppendStrings(b, ix.featureNames)
	b = binenc.AppendStrings(b, ix.taskNames)
	b = binenc.AppendFloat64(b, ix.box.MinLat)
	b = binenc.AppendFloat64(b, ix.box.MinLon)
	b = binenc.AppendFloat64(b, ix.box.MaxLat)
	b = binenc.AppendFloat64(b, ix.box.MaxLon)

	// Partition (grid + cell→region table + centroids).
	b = ix.part.AppendBinary(b)

	// Query acceleration (v2): bounding rects, cell counts, kd layout.
	for _, r := range ix.regionRects {
		b = binenc.AppendVarint(b, int64(r.Row0))
		b = binenc.AppendVarint(b, int64(r.Col0))
		b = binenc.AppendVarint(b, int64(r.Row1))
		b = binenc.AppendVarint(b, int64(r.Col1))
	}
	b = binenc.AppendInts(b, ix.regionCells)
	b = binenc.AppendInts(b, ix.knnOrder)

	// Timings.
	b = binenc.AppendVarint(b, int64(ix.buildTime))
	b = binenc.AppendVarint(b, int64(ix.trainTime))

	// Tasks.
	b = binenc.AppendUvarint(b, uint64(len(ix.tasks)))
	for i := range ix.tasks {
		it := &ix.tasks[i]
		b = binenc.AppendVarint(b, int64(it.task))
		model, err := ml.MarshalClassifier(it.model)
		if err != nil {
			return nil, fmt.Errorf("fairindex: task %d: %w", it.task, err)
		}
		b = binenc.AppendBytes(b, model)
		// Post-processing calibrators: most regions alias one shared
		// global fallback, so serialize each distinct calibrator once
		// and store per-region references (restoring also re-shares
		// them in memory).
		b = binenc.AppendUvarint(b, uint64(len(it.post)))
		if len(it.post) > 0 {
			refOf := make(map[ml.ScoreCalibrator]int, 4)
			var distinct [][]byte
			refs := make([]int, len(it.post))
			for r, cal := range it.post {
				ref, seen := refOf[cal]
				if !seen {
					blob, err := ml.MarshalCalibrator(cal)
					if err != nil {
						return nil, fmt.Errorf("fairindex: task %d region %d: %w", it.task, r, err)
					}
					ref = len(distinct)
					distinct = append(distinct, blob)
					refOf[cal] = ref
				}
				refs[r] = ref
			}
			b = binenc.AppendUvarint(b, uint64(len(distinct)))
			for _, blob := range distinct {
				b = binenc.AppendBytes(b, blob)
			}
			for _, ref := range refs {
				b = binenc.AppendUvarint(b, uint64(ref))
			}
		}
		b = appendTaskResult(b, &it.report)
		// Per-region calibration stats (v2): additive sufficient
		// statistics backing GroupStats; 0 marks an index restored
		// from a v1 artifact that never carried them. The live
		// snapshot is serialized, so statistics folded in by
		// AppendBatch — and therefore the measured drift — survive a
		// save/reload cycle without a codec change.
		stats := ix.statsFor(i)
		b = binenc.AppendUvarint(b, uint64(len(stats)))
		for _, st := range stats {
			b = binenc.AppendVarint(b, int64(st.Count))
			b = binenc.AppendFloat64(b, st.SumScore)
			b = binenc.AppendFloat64(b, st.SumLabel)
		}
	}
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, restoring an
// Index serialized by MarshalBinary. The receiver is overwritten.
func (ix *Index) UnmarshalBinary(data []byte) error {
	if len(data) < len(indexMagic) || string(data[:4]) != string(indexMagic[:]) {
		return fmt.Errorf("%w: bad magic", ErrIndexFormat)
	}
	r := binenc.NewReader(data[4:])
	version := r.Uvarint()
	if version != indexVersion && version != indexVersionV1 {
		if r.Err() == nil {
			return fmt.Errorf("%w: unsupported version %d (have %d)", ErrIndexFormat, version, indexVersion)
		}
		return fmt.Errorf("%w: %v", ErrIndexFormat, r.Err())
	}

	var out Index
	out.codecVersion = int(version)
	out.cfg.Method = Method(r.Int())
	out.cfg.Height = r.Int()
	out.cfg.Model = ModelKind(r.Int())
	out.cfg.Encoding = Encoding(r.Int())
	out.cfg.Task = r.Int()
	out.cfg.Alphas = r.Float64s()
	out.cfg.Objective = Objective(r.Int())
	out.cfg.Lambda = r.Float64()
	out.cfg.TestFrac = r.Float64()
	out.cfg.Seed = r.Varint()
	out.cfg.ZipSites = r.Int()
	out.cfg.ECEBins = r.Int()
	out.cfg.Reweight = r.Bool()
	out.cfg.PostProcess = PostProcess(r.Int())

	out.datasetName = r.String()
	out.featureNames = r.Strings()
	out.taskNames = r.Strings()
	out.box = BBox{
		MinLat: r.Float64(), MinLon: r.Float64(),
		MaxLat: r.Float64(), MaxLon: r.Float64(),
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrIndexFormat, err)
	}

	part, centroids, err := partition.DecodeBinary(r)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrIndexFormat, err)
	}
	out.part = part
	out.grid = part.Grid()
	out.cellRegion = part.CellRegions()
	out.numRegions = part.NumRegions()
	out.centroids = centroids
	out.encoding = out.cfg.Encoding.Resolve()
	out.mapper, err = geo.NewMapper(out.grid, out.box)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrIndexFormat, err)
	}

	if version >= 2 {
		if err := out.readAccel(r); err != nil {
			return err
		}
	} else {
		// v1 artifacts predate the query engine: derive the
		// acceleration structures from the decoded partition.
		out.buildAccel()
	}

	out.buildTime = time.Duration(r.Varint())
	out.trainTime = time.Duration(r.Varint())

	numTasks := int(r.Uvarint())
	if err := r.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrIndexFormat, err)
	}
	for t := 0; t < numTasks; t++ {
		var it indexTask
		it.task = r.Int()
		modelBytes := r.Bytes()
		if err := r.Err(); err != nil {
			return fmt.Errorf("%w: task %d: %v", ErrIndexFormat, t, err)
		}
		if it.model, err = ml.UnmarshalClassifier(modelBytes); err != nil {
			return fmt.Errorf("%w: task %d: %v", ErrIndexFormat, t, err)
		}
		numCal := int(r.Uvarint())
		if numCal > 0 {
			if numCal != out.numRegions {
				return fmt.Errorf("%w: task %d: %d calibrators for %d regions", ErrIndexFormat, t, numCal, out.numRegions)
			}
			numDistinct := int(r.Uvarint())
			if err := r.Err(); err != nil {
				return fmt.Errorf("%w: task %d calibrators: %v", ErrIndexFormat, t, err)
			}
			// Every distinct calibrator must be referenced by at least
			// one region; bounding by numCal keeps a hostile count from
			// sizing the slice before any bytes back it.
			if numDistinct <= 0 || numDistinct > numCal {
				return fmt.Errorf("%w: task %d: %d distinct calibrators for %d regions", ErrIndexFormat, t, numDistinct, numCal)
			}
			distinct := make([]ml.ScoreCalibrator, numDistinct)
			for c := range distinct {
				blob := r.Bytes()
				if err := r.Err(); err != nil {
					return fmt.Errorf("%w: task %d calibrator %d: %v", ErrIndexFormat, t, c, err)
				}
				if distinct[c], err = ml.UnmarshalCalibrator(blob); err != nil {
					return fmt.Errorf("%w: task %d calibrator %d: %v", ErrIndexFormat, t, c, err)
				}
			}
			it.post = make([]ml.ScoreCalibrator, numCal)
			for c := 0; c < numCal; c++ {
				ref := int(r.Uvarint())
				if r.Err() == nil && (ref < 0 || ref >= numDistinct) {
					return fmt.Errorf("%w: task %d region %d: calibrator ref %d of %d", ErrIndexFormat, t, c, ref, numDistinct)
				}
				if err := r.Err(); err != nil {
					return fmt.Errorf("%w: task %d calibrator refs: %v", ErrIndexFormat, t, err)
				}
				it.post[c] = distinct[ref]
			}
		}
		readTaskResult(r, &it.report)
		if err := r.Err(); err != nil {
			return fmt.Errorf("%w: task %d report: %v", ErrIndexFormat, t, err)
		}
		if version >= 2 {
			numStats := int(r.Uvarint())
			if err := r.Err(); err != nil {
				return fmt.Errorf("%w: task %d stats: %v", ErrIndexFormat, t, err)
			}
			if numStats != 0 {
				if numStats != out.numRegions {
					return fmt.Errorf("%w: task %d: %d region stats for %d regions", ErrIndexFormat, t, numStats, out.numRegions)
				}
				it.stats = make([]calib.SuffStats, numStats)
				for s := range it.stats {
					it.stats[s] = calib.SuffStats{
						Count:    r.Int(),
						SumScore: r.Float64(),
						SumLabel: r.Float64(),
					}
				}
				if err := r.Err(); err != nil {
					return fmt.Errorf("%w: task %d stats: %v", ErrIndexFormat, t, err)
				}
			}
		}
		out.tasks = append(out.tasks, it)
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrIndexFormat, err)
	}
	if r.Len() != 0 {
		return fmt.Errorf("%w: %d trailing bytes after payload", ErrIndexFormat, r.Len())
	}
	out.initMaint(0)
	*ix = out
	return nil
}

// readAccel restores the query acceleration section of a v2 artifact
// and validates its structural invariants: rects must lie on the
// grid, cell counts must be positive and sum to the grid, and the kd
// layout must be a permutation of the region ids. (Consistency with
// the cell→region table beyond that is the builder's contract; the
// structures are also recomputable via buildAccel.)
func (ix *Index) readAccel(r *binenc.Reader) error {
	ix.regionRects = make([]geo.CellRect, ix.numRegions)
	for i := range ix.regionRects {
		rect := geo.CellRect{Row0: r.Int(), Col0: r.Int(), Row1: r.Int(), Col1: r.Int()}
		if r.Err() == nil && (rect.Row0 < 0 || rect.Col0 < 0 ||
			rect.Row0 >= rect.Row1 || rect.Col0 >= rect.Col1 ||
			rect.Row1 > ix.grid.U || rect.Col1 > ix.grid.V) {
			return fmt.Errorf("%w: region %d bounding rect %v outside %v", ErrIndexFormat, i, rect, ix.grid)
		}
		ix.regionRects[i] = rect
	}
	ix.regionCells = r.Ints()
	ix.knnOrder = r.Ints()
	if err := r.Err(); err != nil {
		return fmt.Errorf("%w: acceleration: %v", ErrIndexFormat, err)
	}
	if len(ix.regionCells) != ix.numRegions {
		return fmt.Errorf("%w: %d region cell counts for %d regions", ErrIndexFormat, len(ix.regionCells), ix.numRegions)
	}
	total := 0
	for i, n := range ix.regionCells {
		if n < 1 || n > ix.regionRects[i].Area() {
			return fmt.Errorf("%w: region %d: %d cells in bounding rect %v", ErrIndexFormat, i, n, ix.regionRects[i])
		}
		total += n
	}
	if total != ix.grid.NumCells() {
		return fmt.Errorf("%w: region cells sum to %d over a %d-cell grid", ErrIndexFormat, total, ix.grid.NumCells())
	}
	if len(ix.knnOrder) != ix.numRegions {
		return fmt.Errorf("%w: kd layout holds %d of %d regions", ErrIndexFormat, len(ix.knnOrder), ix.numRegions)
	}
	seen := make([]bool, ix.numRegions)
	for _, region := range ix.knnOrder {
		if region < 0 || region >= ix.numRegions || seen[region] {
			return fmt.Errorf("%w: kd layout is not a permutation of region ids", ErrIndexFormat)
		}
		seen[region] = true
	}
	return nil
}

// appendTaskResult appends the binary encoding of a metric report.
// Floats keep exact bits, so NaN sentinels (e.g. an undefined
// calibration ratio) survive the round trip.
func appendTaskResult(b []byte, tr *TaskResult) []byte {
	b = binenc.AppendVarint(b, int64(tr.Task))
	b = binenc.AppendString(b, tr.TaskName)
	for _, f := range []float64{
		tr.ENCE, tr.ENCETrain, tr.ENCETest,
		tr.Accuracy, tr.AUC, tr.TrainMiscal, tr.TestMiscal, tr.ECE,
		tr.TrainCalRatio, tr.TestCalRatio,
		tr.StatParityGap, tr.EqualOddsGap,
	} {
		b = binenc.AppendFloat64(b, f)
	}
	b = binenc.AppendUvarint(b, uint64(len(tr.TopNeighborhoods)))
	for _, nr := range tr.TopNeighborhoods {
		b = binenc.AppendVarint(b, int64(nr.Group))
		b = binenc.AppendVarint(b, int64(nr.Count))
		b = binenc.AppendFloat64(b, nr.Ratio)
		b = binenc.AppendFloat64(b, nr.Miscal)
		b = binenc.AppendFloat64(b, nr.ECE)
		b = binenc.AppendFloat64(b, nr.PosRate)
		b = binenc.AppendFloat64(b, nr.MeanConf)
	}
	b = binenc.AppendStrings(b, tr.ImportanceNames)
	b = binenc.AppendFloat64s(b, tr.ImportanceValues)
	return b
}

// readTaskResult decodes a metric report; errors latch in r.
func readTaskResult(r *binenc.Reader, tr *TaskResult) {
	tr.Task = r.Int()
	tr.TaskName = r.String()
	for _, dst := range []*float64{
		&tr.ENCE, &tr.ENCETrain, &tr.ENCETest,
		&tr.Accuracy, &tr.AUC, &tr.TrainMiscal, &tr.TestMiscal, &tr.ECE,
		&tr.TrainCalRatio, &tr.TestCalRatio,
		&tr.StatParityGap, &tr.EqualOddsGap,
	} {
		*dst = r.Float64()
	}
	n := int(r.Uvarint())
	for i := 0; i < n && r.Err() == nil; i++ {
		tr.TopNeighborhoods = append(tr.TopNeighborhoods, NeighborhoodReport{
			Group:    r.Int(),
			Count:    r.Int(),
			Ratio:    r.Float64(),
			Miscal:   r.Float64(),
			ECE:      r.Float64(),
			PosRate:  r.Float64(),
			MeanConf: r.Float64(),
		})
	}
	tr.ImportanceNames = r.Strings()
	tr.ImportanceValues = r.Float64s()
}
