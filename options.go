package fairindex

import (
	"fmt"
	"math"

	"fairindex/internal/pipeline"
)

// ErrConfig reports an invalid build configuration. Errors returned
// by Build for bad options wrap it, so callers can errors.Is against
// a single sentinel.
var ErrConfig = pipeline.ErrConfig

// Option configures a Build. Options are applied in order onto the
// default configuration — the paper's Fair KD-tree at height 8 —
// and later options override earlier ones. Invalid values surface as
// errors from Build, wrapping ErrConfig.
type Option func(*Config) error

// WithMethod selects the partitioning / mitigation strategy (default
// MethodFairKD, the paper's headline index).
func WithMethod(m Method) Option {
	return func(c *Config) error {
		c.Method = m
		return nil
	}
}

// WithHeight sets the tree height th (leaf count ≤ 2^th).
func WithHeight(h int) Option {
	return func(c *Config) error {
		if h < 0 {
			return fmt.Errorf("%w: height %d", ErrConfig, h)
		}
		c.Height = h
		return nil
	}
}

// WithModel selects the classifier family for both the initial
// scoring run and the final model.
func WithModel(k ModelKind) Option {
	return func(c *Config) error {
		c.Model = k
		return nil
	}
}

// WithEncoding selects the neighborhood feature encoding of the final
// training (default centroid+one-hot).
func WithEncoding(e Encoding) Option {
	return func(c *Config) error {
		c.Encoding = e
		return nil
	}
}

// WithTask selects the label column for single-task methods.
func WithTask(task int) Option {
	return func(c *Config) error {
		if task < 0 {
			return fmt.Errorf("%w: task %d", ErrConfig, task)
		}
		c.Task = task
		return nil
	}
}

// WithAlphas sets the per-task weights for the multi-objective method
// (MethodMultiObjectiveFairKD). Supplying alphas with any other
// method is a configuration error.
func WithAlphas(alphas ...float64) Option {
	return func(c *Config) error {
		if len(alphas) == 0 {
			return fmt.Errorf("%w: empty alphas", ErrConfig)
		}
		c.Alphas = append([]float64(nil), alphas...)
		return nil
	}
}

// WithObjective selects the fair split scoring function.
func WithObjective(o Objective) Option {
	return func(c *Config) error {
		c.Objective = o
		return nil
	}
}

// WithLambda sets the geometry/fairness blend of
// ObjectiveComposite.
func WithLambda(lambda float64) Option {
	return func(c *Config) error {
		c.Lambda = lambda
		return nil
	}
}

// WithObjectiveMetric replaces the fair split objective with a
// registered fairness metric: each candidate split is scored by the
// metric over the two halves' pooled sufficient statistics and the
// split minimizing it wins — e.g. WithObjectiveMetric("atkinson")
// builds a balance-constrained partitioning that equalizes
// miscalibration across the halves of every split. Supported by
// MethodFairKD and MethodMultiObjectiveFairKD; the empty default
// keeps the paper's Eq. 9 objective bit-identical to earlier
// releases. The metric name must be registered (RegisterMetric) in
// the building process; it is not serialized into the artifact.
func WithObjectiveMetric(name string) Option {
	return func(c *Config) error {
		c.ObjectiveMetric = name
		return nil
	}
}

// WithTestFrac sets the held-out fraction (default 0.2). Zero is
// rejected rather than silently restoring the default: the pipeline
// always evaluates on a held-out split.
func WithTestFrac(f float64) Option {
	return func(c *Config) error {
		if f <= 0 || f >= 1 {
			return fmt.Errorf("%w: test fraction %v (must be in (0,1))", ErrConfig, f)
		}
		c.TestFrac = f
		return nil
	}
}

// WithSeed drives the train/test split and the zip-code layout.
func WithSeed(seed int64) Option {
	return func(c *Config) error {
		c.Seed = seed
		return nil
	}
}

// WithZipSites sets the number of Voronoi regions for MethodZipCode
// (default 40).
func WithZipSites(n int) Option {
	return func(c *Config) error {
		if n <= 0 {
			return fmt.Errorf("%w: zip sites %d", ErrConfig, n)
		}
		c.ZipSites = n
		return nil
	}
}

// WithECEBins sets the bin count of per-neighborhood ECE reports
// (default 15).
func WithECEBins(n int) Option {
	return func(c *Config) error {
		if n <= 0 {
			return fmt.Errorf("%w: ECE bins %d", ErrConfig, n)
		}
		c.ECEBins = n
		return nil
	}
}

// WithReweight forces Kamiran–Calders sample weights in the final
// training regardless of method.
func WithReweight(on bool) Option {
	return func(c *Config) error {
		c.Reweight = on
		return nil
	}
}

// WithPostProcess selects the optional per-neighborhood score
// recalibration (PostPlatt or PostIsotonic) applied after the final
// training. The fitted calibrators become part of the Index and are
// applied by Score.
func WithPostProcess(p PostProcess) Option {
	return func(c *Config) error {
		switch p {
		case PostNone, PostPlatt, PostIsotonic:
			c.PostProcess = p
			return nil
		}
		return fmt.Errorf("%w: unknown post-process %d", ErrConfig, int(p))
	}
}

// WithTrainWorkers bounds the goroutines Build may use across its
// parallel stages (per-task training pool, classifier forward passes,
// KD sibling recursion). 0 — the default — resolves to GOMAXPROCS; 1
// forces a fully sequential build. The produced Index is bit-identical
// for any value, so this is purely a resource-control knob (e.g. to
// keep a build box responsive while serving).
func WithTrainWorkers(n int) Option {
	return func(c *Config) error {
		if n < 0 {
			return fmt.Errorf("%w: train workers %d", ErrConfig, n)
		}
		c.TrainWorkers = n
		return nil
	}
}

// WithStreaming sets the record-batch size of a streaming build's
// two-pass ingest (0 — the default — resolves to DefaultStreamChunk).
// Like WithTrainWorkers it is purely a resource knob: the produced
// Index is bit-identical for any chunk size; only the transient
// ingest residency changes. It has no effect on Build over an
// in-memory dataset.
func WithStreaming(chunk int) Option {
	return func(c *Config) error {
		if chunk < 0 {
			return fmt.Errorf("%w: stream chunk %d", ErrConfig, chunk)
		}
		c.StreamChunk = chunk
		return nil
	}
}

// WithDriftThreshold arms the built Index's incremental-maintenance
// drift monitor: once batches folded in by AppendBatch move any
// task's live ENCE at least t away from its build-time value, the
// index advertises that a rebuild is recommended (RebuildRecommended,
// the registry drift hook and the server's index listing). The
// crossing is inclusive — a drift landing exactly on t triggers; the
// shared boundary predicate is DriftExceeds, which every layer of the
// drift control plane uses. 0 — the default — monitors drift without
// ever recommending. The threshold can be changed later with
// Index.SetDriftThreshold.
func WithDriftThreshold(t float64) Option {
	return func(c *Config) error {
		if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
			return fmt.Errorf("%w: drift threshold %v", ErrConfig, t)
		}
		c.DriftThreshold = t
		return nil
	}
}

// WithDriftThresholds arms per-metric drift monitoring on the built
// Index: each entry maps a registered metric name to the drift
// (|live − build-time|) at which appended batches flip the
// rebuild-recommended flag, e.g. arming on statistical-parity decay:
//
//	fairindex.WithDriftThresholds(map[string]float64{
//		"ence":        0.02,
//		"stat_parity": 0.05,
//	})
//
// Entries layer on top of (and, for "ence", override) the legacy
// WithDriftThreshold. Crossings are inclusive (see DriftExceeds);
// thresholds can be changed later with Index.SetDriftThresholds.
func WithDriftThresholds(thresholds map[string]float64) Option {
	return func(c *Config) error {
		c.DriftThresholds = make(map[string]float64, len(thresholds))
		for name, t := range thresholds {
			if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
				return fmt.Errorf("%w: drift threshold %v for metric %q", ErrConfig, t, name)
			}
			c.DriftThresholds[name] = t
		}
		return nil
	}
}

// WithConfig replaces the whole configuration with cfg — the bridge
// from the legacy Config-struct surface into the options world. Apply
// it first; later options override individual fields.
func WithConfig(cfg Config) Option {
	return func(c *Config) error {
		*c = cfg
		// Copy the reference fields so later caller mutations cannot
		// reach into the built Index.
		c.Alphas = append([]float64(nil), cfg.Alphas...)
		if cfg.DriftThresholds != nil {
			c.DriftThresholds = make(map[string]float64, len(cfg.DriftThresholds))
			for name, t := range cfg.DriftThresholds {
				c.DriftThresholds[name] = t
			}
		}
		return nil
	}
}

// resolveOptions folds opts over Build's default configuration.
func resolveOptions(opts []Option) (Config, error) {
	cfg := Config{Method: MethodFairKD, Height: 8}
	for _, opt := range opts {
		if opt == nil {
			return cfg, fmt.Errorf("%w: nil option", ErrConfig)
		}
		if err := opt(&cfg); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}
