package fairindex_test

import (
	"fmt"
	"log"

	fairindex "fairindex"
)

// exampleCity deterministically generates the reduced synthetic Los
// Angeles dataset the examples share (the full paper-sized city works
// identically, just slower).
func exampleCity() *fairindex.Dataset {
	spec := fairindex.LA()
	spec.NumRecords = 400
	ds, err := fairindex.GenerateCity(spec, fairindex.MustGrid(32, 32))
	if err != nil {
		log.Fatal(err)
	}
	return ds
}

// Build a fair spatial index once, then query it many times. The
// default configuration is the paper's Fair KD-tree; WithHeight
// controls the number of neighborhoods (up to 2^height).
func ExampleBuild() {
	ds := exampleCity()
	idx, err := fairindex.Build(ds,
		fairindex.WithMethod(fairindex.MethodFairKD),
		fairindex.WithHeight(5),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s index over %q: %d neighborhoods\n",
		idx.Method(), idx.DatasetName(), idx.NumRegions())
	// Output:
	// Fair KD-tree index over "Los Angeles": 32 neighborhoods
}

// Locate maps a coordinate to its neighborhood id in O(1) — one
// lookup in the precomputed cell→region table, no tree walk.
func ExampleIndex_Locate() {
	idx, err := fairindex.Build(exampleCity(), fairindex.WithHeight(5))
	if err != nil {
		log.Fatal(err)
	}
	region, err := idx.Locate(34.05, -118.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(34.05, -118.25) lies in neighborhood %d of %d\n", region, idx.NumRegions())
	// Output:
	// (34.05, -118.25) lies in neighborhood 16 of 32
}

// RangeQuery returns every neighborhood intersecting a geographic
// window, with the overlapping cell count and covered fraction —
// pruned via per-region bounding rectangles rather than a full grid
// scan.
func ExampleIndex_RangeQuery() {
	idx, err := fairindex.Build(exampleCity(), fairindex.WithHeight(5))
	if err != nil {
		log.Fatal(err)
	}
	box := idx.Box()
	window := fairindex.BBox{
		MinLat: box.MinLat, MinLon: box.MinLon,
		MaxLat: (box.MinLat + box.MaxLat) / 2, MaxLon: (box.MinLon + box.MaxLon) / 2,
	}
	overlaps, err := idx.RangeQuery(window)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d neighborhoods intersect the southwest quadrant\n", len(overlaps))
	for _, ov := range overlaps[:3] {
		fmt.Printf("  region %d: %d cells, %.0f%% inside\n", ov.Region, ov.Cells, 100*ov.Fraction)
	}
	// Output:
	// 13 neighborhoods intersect the southwest quadrant
	//   region 0: 56 cells, 100% inside
	//   region 1: 28 cells, 100% inside
	//   region 2: 6 cells, 100% inside
}

// BuildStream builds the same artifact as Build — bit for bit — but
// pulls records through a chunked Source instead of requiring the
// whole dataset in memory. OpenCSVSource streams a file from disk;
// here a DatasetSource wraps the generated city so the example is
// self-contained.
func ExampleBuildStream() {
	ds := exampleCity()
	idx, err := fairindex.BuildStream(fairindex.NewDatasetSource(ds),
		fairindex.WithMethod(fairindex.MethodFairKD),
		fairindex.WithHeight(5),
		fairindex.WithStreaming(64), // ≤64 records resident per batch
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s index over %q: %d neighborhoods\n",
		idx.Method(), idx.DatasetName(), idx.NumRegions())
	// Output:
	// Fair KD-tree index over "Los Angeles": 32 neighborhoods
}

// AppendBatch folds freshly arrived records into the live per-region
// statistics without retraining: GroupStats and Report see the grown
// population immediately, and the returned drift (live ENCE vs the
// build-time baseline) reports when a full rebuild is worth it.
func ExampleIndex_AppendBatch() {
	ds := exampleCity()
	head := *ds // the 360 records indexed at build time...
	head.Records = ds.Records[:360]
	idx, err := fairindex.Build(&head, fairindex.WithHeight(5))
	if err != nil {
		log.Fatal(err)
	}
	idx.SetDriftThreshold(0.5) // arm "rebuild recommended" at ENCE drift ≥ 0.5

	res, err := idx.AppendBatch(ds.Records[360:]) // ...and the 40 that arrived since
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("appended %d records (%d total), drift %.4f, rebuild recommended: %v\n",
		res.Appended, res.Total, res.Drift, res.RebuildRecommended)
	// Output:
	// appended 40 records (40 total), drift 0.0066, rebuild recommended: false
}

// Score runs one individual through the task's final calibrated
// model: locate, encode the neighborhood attribute, forward pass.
func ExampleIndex_Score() {
	ds := exampleCity()
	idx, err := fairindex.Build(ds, fairindex.WithHeight(5))
	if err != nil {
		log.Fatal(err)
	}
	score, err := idx.Score(ds.Records[0], 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(y=1|x) = %.3f\n", score)
	// Output:
	// P(y=1|x) = 0.007
}
