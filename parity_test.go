package fairindex

import (
	"bytes"
	"testing"

	"fairindex/internal/dataset"
	"fairindex/internal/geo"
	"fairindex/internal/pipeline"
)

// TestIndexBuildParity is the overhaul's acceptance gate at the
// artifact level: for every partition method, several heights and
// seeds, the optimized Build (grouped training kernels, pooled
// scratch, TrainWorkers > 1) must serialize to the exact bytes of an
// index assembled from pipeline.BuildReference — the retained
// sequential, allocation-naive build. Wall-clock durations are the
// only fields allowed to differ; the test zeroes them on both sides
// before comparing.
//
// Run under -race in CI, this also proves the parallel stages share
// nothing they should not.
func TestIndexBuildParity(t *testing.T) {
	spec := dataset.LA()
	spec.NumRecords = 420
	ds, err := dataset.Generate(spec, geo.MustGrid(20, 20))
	if err != nil {
		t.Fatal(err)
	}
	methods := []Method{
		MethodMedianKD, MethodFairKD, MethodIterativeFairKD,
		MethodMultiObjectiveFairKD, MethodGridReweight, MethodZipCode,
		MethodFairQuadtree,
	}
	for _, m := range methods {
		for _, height := range []int{3, 6} {
			for _, seed := range []int64{2, 11, 77} {
				cfg := Config{Method: m, Height: height, Seed: seed, TrainWorkers: 3}
				opt, err := Build(ds, WithConfig(cfg))
				if err != nil {
					t.Fatalf("%v h=%d seed=%d: Build: %v", m, height, seed, err)
				}
				refArt, err := pipeline.BuildReference(ds, cfg)
				if err != nil {
					t.Fatalf("%v h=%d seed=%d: BuildReference: %v", m, height, seed, err)
				}
				ref, err := newIndex(ds, refArt)
				if err != nil {
					t.Fatalf("%v h=%d seed=%d: newIndex(reference): %v", m, height, seed, err)
				}
				// Durations are wall-clock observability, not artifact
				// content; everything else must match bit for bit.
				opt.buildTime, opt.trainTime = 0, 0
				ref.buildTime, ref.trainTime = 0, 0
				optBytes, err := opt.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				refBytes, err := ref.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(optBytes, refBytes) {
					at := 0
					for at < len(optBytes) && at < len(refBytes) && optBytes[at] == refBytes[at] {
						at++
					}
					t.Fatalf("%v h=%d seed=%d: optimized .fidx (%d bytes) diverges from reference (%d bytes) at offset %d",
						m, height, seed, len(optBytes), len(refBytes), at)
				}
			}
		}
	}
}

// TestIndexBuildParityPostProcess extends the byte parity to indexes
// carrying fitted per-region calibrators, the artifact component the
// main sweep does not exercise.
func TestIndexBuildParityPostProcess(t *testing.T) {
	spec := dataset.Houston()
	spec.NumRecords = 380
	ds, err := dataset.Generate(spec, geo.MustGrid(16, 16))
	if err != nil {
		t.Fatal(err)
	}
	for _, post := range []PostProcess{PostPlatt, PostIsotonic} {
		cfg := Config{Method: MethodFairKD, Height: 4, Seed: 5, TrainWorkers: 4, PostProcess: post}
		opt, err := Build(ds, WithConfig(cfg))
		if err != nil {
			t.Fatal(err)
		}
		refArt, err := pipeline.BuildReference(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := newIndex(ds, refArt)
		if err != nil {
			t.Fatal(err)
		}
		opt.buildTime, opt.trainTime = 0, 0
		ref.buildTime, ref.trainTime = 0, 0
		optBytes, err := opt.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		refBytes, err := ref.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(optBytes, refBytes) {
			t.Fatalf("post-process %v: optimized and reference artifacts differ", post)
		}
	}
}
