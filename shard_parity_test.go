package fairindex_test

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	fairindex "fairindex"
	"fairindex/internal/router"
	"fairindex/internal/server"
	"fairindex/internal/shard"
)

// The HTTP sharded-vs-whole parity suite. The in-process merge kernels
// are pinned bit-identical in internal/shard; this suite locks the
// same property down at the wire: a router fronting real per-shard
// HTTP servers must produce byte-identical response bodies (and the
// same generation header) as a single server holding the unsharded
// artifact, for every query endpoint, across partition methods and
// shard counts.

func parityConfigs() map[string][]fairindex.Option {
	return map[string][]fairindex.Option{
		"fair-h4": {fairindex.WithHeight(4), fairindex.WithSeed(1)},
		"fair-h6": {fairindex.WithHeight(6), fairindex.WithSeed(1)},
		"quadtree": {fairindex.WithMethod(fairindex.MethodFairQuadtree),
			fairindex.WithHeight(4), fairindex.WithSeed(3)},
		"zipcode": {fairindex.WithMethod(fairindex.MethodZipCode),
			fairindex.WithZipSites(12), fairindex.WithSeed(2)},
	}
}

var parityShardCounts = []int{2, 4, 8}

func buildParityIndex(t *testing.T, opts ...fairindex.Option) *fairindex.Index {
	t.Helper()
	spec := fairindex.LA()
	spec.NumRecords = 400
	ds, err := fairindex.GenerateCity(spec, fairindex.MustGrid(32, 32))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := fairindex.Build(ds, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// parityRequest is one wire probe replayed against both deployments.
type parityRequest struct {
	method, path, body string
}

// parityBattery builds a deterministic request set spanning every
// endpoint, mixing in-box, out-of-box and invalid inputs.
func parityBattery(whole *fairindex.Index) []parityRequest {
	box := whole.Box()
	rng := rand.New(rand.NewSource(41))
	point := func() (float64, float64) {
		latSpan := box.MaxLat - box.MinLat
		lonSpan := box.MaxLon - box.MinLon
		return box.MinLat - 0.2*latSpan + rng.Float64()*1.4*latSpan,
			box.MinLon - 0.2*lonSpan + rng.Float64()*1.4*lonSpan
	}
	task := whole.Tasks()[0]
	var reqs []parityRequest

	for i := 0; i < 6; i++ {
		lat, lon := point()
		if i%2 == 0 {
			reqs = append(reqs, parityRequest{"GET", fmt.Sprintf("/v1/locate?lat=%v&lon=%v", lat, lon), ""})
		} else {
			reqs = append(reqs, parityRequest{"POST", "/v1/locate", fmt.Sprintf(`{"lat":%v,"lon":%v}`, lat, lon)})
		}
	}
	// Batches: clean, and with invalid points interleaved (error-text
	// parity down to capped per-point messages).
	var lats, lons []string
	for i := 0; i < 24; i++ {
		lat, lon := point()
		lats = append(lats, fmt.Sprintf("%v", lat))
		lons = append(lons, fmt.Sprintf("%v", lon))
	}
	reqs = append(reqs, parityRequest{"POST", "/v1/locate_batch",
		fmt.Sprintf(`{"lats":[%s],"lons":[%s]}`, strings.Join(lats, ","), strings.Join(lons, ","))})
	// JSON numbers cannot express NaN/Inf, so a non-finite batch point
	// dies at decode time on both deployments — the parity claim is
	// that the 400 bodies still match byte-for-byte. The query-string
	// form CAN carry NaN, reaching the non-finite validation text.
	infLats := append([]string{}, lats[:12]...)
	infLats[3] = "1e999"
	reqs = append(reqs, parityRequest{"POST", "/v1/locate_batch",
		fmt.Sprintf(`{"lats":[%s],"lons":[%s]}`, strings.Join(infLats, ","), strings.Join(lons[:12], ","))})
	reqs = append(reqs, parityRequest{"POST", "/v1/locate_batch", `{"lats":[1.0],"lons":[]}`})
	reqs = append(reqs, parityRequest{"POST", "/v1/locate_batch", `{"lats":[],"lons":[]}`})
	reqs = append(reqs, parityRequest{"GET", "/v1/locate?lat=NaN&lon=1", ""})
	reqs = append(reqs, parityRequest{"GET", "/v1/locate?lat=1&lon=-Inf", ""})

	// Range queries: nested, overlapping, fully outside, degenerate.
	for i := 0; i < 4; i++ {
		lat0, lon0 := point()
		lat1, lon1 := point()
		if lat1 < lat0 {
			lat0, lat1 = lat1, lat0
		}
		if lon1 < lon0 {
			lon0, lon1 = lon1, lon0
		}
		reqs = append(reqs, parityRequest{"POST", "/v1/range",
			fmt.Sprintf(`{"min_lat":%v,"min_lon":%v,"max_lat":%v,"max_lon":%v}`, lat0, lon0, lat1, lon1)})
	}
	reqs = append(reqs, parityRequest{"POST", "/v1/range", `{"min_lat":3,"min_lon":0,"max_lat":1,"max_lon":1}`})

	// kNN: several k values in both metrics, plus invalid k.
	for _, k := range []int{1, 3, 7, whole.NumRegions(), whole.NumRegions() + 5} {
		lat, lon := point()
		reqs = append(reqs, parityRequest{"GET", fmt.Sprintf("/v1/knn?lat=%v&lon=%v&k=%d", lat, lon, k), ""})
		reqs = append(reqs, parityRequest{"POST", "/v1/knn",
			fmt.Sprintf(`{"lat":%v,"lon":%v,"k":%d,"squared":true}`, lat, lon, k)})
	}
	reqs = append(reqs, parityRequest{"GET", "/v1/knn?lat=1&lon=2&k=0", ""})

	// Window stats: explicit windows, rects, metric subsets, sums.
	n := whole.NumRegions()
	windows := [][]int{{0}, {0, 1, 2}, {n - 1}, {1, n / 2, n - 1}}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	windows = append(windows, all)
	for _, w := range windows {
		parts := make([]string, len(w))
		for i, r := range w {
			parts[i] = fmt.Sprintf("%d", r)
		}
		reqs = append(reqs, parityRequest{"POST", "/v1/stats",
			fmt.Sprintf(`{"task":%d,"regions":[%s]}`, task, strings.Join(parts, ","))})
	}
	reqs = append(reqs,
		parityRequest{"GET", fmt.Sprintf("/v1/stats?task=%d&regions=0,1,2&sums=true", task), ""},
		parityRequest{"POST", "/v1/stats", fmt.Sprintf(`{"task":%d,"regions":[0,1],"metrics":["miscal"]}`, task)},
		parityRequest{"POST", "/v1/stats", fmt.Sprintf(`{"task":%d,"regions":[0,1],"metrics":[]}`, task)},
		parityRequest{"POST", "/v1/stats", fmt.Sprintf(`{"task":%d,"rect":{"min_lat":%v,"min_lon":%v,"max_lat":%v,"max_lon":%v},"sums":true}`,
			task, box.MinLat, box.MinLon, box.MaxLat, box.MaxLon)},
		parityRequest{"POST", "/v1/stats", fmt.Sprintf(`{"task":%d,"rect":{"min_lat":0,"min_lon":0,"max_lat":1,"max_lon":1}}`, task)},
		// Error parity: dup region, out of range, both selectors, bad task.
		parityRequest{"POST", "/v1/stats", fmt.Sprintf(`{"task":%d,"regions":[1,1]}`, task)},
		parityRequest{"POST", "/v1/stats", fmt.Sprintf(`{"task":%d,"regions":[%d]}`, task, n)},
		parityRequest{"POST", "/v1/stats", fmt.Sprintf(`{"task":%d,"regions":[0],"rect":{"min_lat":0,"min_lon":0,"max_lat":1,"max_lon":1}}`, task)},
		parityRequest{"POST", "/v1/stats", `{"task":12345,"regions":[0]}`},
		parityRequest{"POST", "/v1/stats", fmt.Sprintf(`{"task":%d,"regions":[0],"metrics":["nope"]}`, task)},
	)
	return reqs
}

// replay issues one request and returns status, body and generation.
func replay(t *testing.T, base string, rq parityRequest) (int, string, string) {
	t.Helper()
	var rd io.Reader
	if rq.body != "" {
		rd = strings.NewReader(rq.body)
	}
	req, err := http.NewRequest(rq.method, base+rq.path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if rq.body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data), resp.Header.Get(server.GenerationHeader)
}

func TestShardedHTTPParity(t *testing.T) {
	for name, opts := range parityConfigs() {
		t.Run(name, func(t *testing.T) {
			whole := buildParityIndex(t, opts...)
			wts := httptest.NewServer(server.New(whole))
			defer wts.Close()
			battery := parityBattery(whole)

			for _, n := range parityShardCounts {
				t.Run(fmt.Sprintf("shards-%d", n), func(t *testing.T) {
					if n > whole.NumRegions() {
						t.Skipf("%d regions < %d shards", whole.NumRegions(), n)
					}
					m, shards, err := shard.Split(whole, n)
					if err != nil {
						t.Fatal(err)
					}
					backends := make([]router.Backend, len(shards))
					for i, sx := range shards {
						ts := httptest.NewServer(server.New(sx))
						defer ts.Close()
						backends[i] = router.Backend{Name: m.Shards[i].Name, URL: ts.URL}
					}
					rt, err := router.New(m, backends)
					if err != nil {
						t.Fatal(err)
					}
					rts := httptest.NewServer(rt)
					defer rts.Close()

					for _, rq := range battery {
						wantStatus, wantBody, wantGen := replay(t, wts.URL, rq)
						gotStatus, gotBody, gotGen := replay(t, rts.URL, rq)
						if gotStatus != wantStatus {
							t.Errorf("%s %s body=%q: status %d, whole server %d\nrouter body: %s\nwhole body:  %s",
								rq.method, rq.path, rq.body, gotStatus, wantStatus, gotBody, wantBody)
							continue
						}
						if gotBody != wantBody {
							t.Errorf("%s %s body=%q: response bodies diverge\nrouter: %s\nwhole:  %s",
								rq.method, rq.path, rq.body, gotBody, wantBody)
						}
						if wantGen != "" && gotGen != wantGen {
							t.Errorf("%s %s: generation %q, whole server %q", rq.method, rq.path, gotGen, wantGen)
						}
					}
				})
			}
		})
	}
}
