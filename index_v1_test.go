package fairindex

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"fairindex/internal/binenc"
	"fairindex/internal/dataset"
	"fairindex/internal/geo"
	"fairindex/internal/ml"
)

// marshalBinaryV1 reproduces the pre-query-engine v1 serialization
// byte for byte: no acceleration section, no per-region stats,
// version tag 1. It pins the decoder's backward-compatibility branch
// now that MarshalBinary writes v2.
func marshalBinaryV1(ix *Index) ([]byte, error) {
	b := append([]byte(nil), indexMagic[:]...)
	b = binenc.AppendUvarint(b, indexVersionV1)

	b = binenc.AppendVarint(b, int64(ix.cfg.Method))
	b = binenc.AppendVarint(b, int64(ix.cfg.Height))
	b = binenc.AppendVarint(b, int64(ix.cfg.Model))
	b = binenc.AppendVarint(b, int64(ix.cfg.Encoding))
	b = binenc.AppendVarint(b, int64(ix.cfg.Task))
	b = binenc.AppendFloat64s(b, ix.cfg.Alphas)
	b = binenc.AppendVarint(b, int64(ix.cfg.Objective))
	b = binenc.AppendFloat64(b, ix.cfg.Lambda)
	b = binenc.AppendFloat64(b, ix.cfg.TestFrac)
	b = binenc.AppendVarint(b, ix.cfg.Seed)
	b = binenc.AppendVarint(b, int64(ix.cfg.ZipSites))
	b = binenc.AppendVarint(b, int64(ix.cfg.ECEBins))
	b = binenc.AppendBool(b, ix.cfg.Reweight)
	b = binenc.AppendVarint(b, int64(ix.cfg.PostProcess))

	b = binenc.AppendString(b, ix.datasetName)
	b = binenc.AppendStrings(b, ix.featureNames)
	b = binenc.AppendStrings(b, ix.taskNames)
	b = binenc.AppendFloat64(b, ix.box.MinLat)
	b = binenc.AppendFloat64(b, ix.box.MinLon)
	b = binenc.AppendFloat64(b, ix.box.MaxLat)
	b = binenc.AppendFloat64(b, ix.box.MaxLon)

	b = ix.part.AppendBinary(b)

	b = binenc.AppendVarint(b, int64(ix.buildTime))
	b = binenc.AppendVarint(b, int64(ix.trainTime))

	b = binenc.AppendUvarint(b, uint64(len(ix.tasks)))
	for i := range ix.tasks {
		it := &ix.tasks[i]
		b = binenc.AppendVarint(b, int64(it.task))
		model, err := ml.MarshalClassifier(it.model)
		if err != nil {
			return nil, fmt.Errorf("fairindex: task %d: %w", it.task, err)
		}
		b = binenc.AppendBytes(b, model)
		b = binenc.AppendUvarint(b, uint64(len(it.post)))
		if len(it.post) > 0 {
			refOf := make(map[ml.ScoreCalibrator]int, 4)
			var distinct [][]byte
			refs := make([]int, len(it.post))
			for r, cal := range it.post {
				ref, seen := refOf[cal]
				if !seen {
					blob, err := ml.MarshalCalibrator(cal)
					if err != nil {
						return nil, err
					}
					ref = len(distinct)
					distinct = append(distinct, blob)
					refOf[cal] = ref
				}
				refs[r] = ref
			}
			b = binenc.AppendUvarint(b, uint64(len(distinct)))
			for _, blob := range distinct {
				b = binenc.AppendBytes(b, blob)
			}
			for _, ref := range refs {
				b = binenc.AppendUvarint(b, uint64(ref))
			}
		}
		b = appendTaskResult(b, &it.report)
	}
	return b, nil
}

func buildV1TestIndex(t *testing.T) *Index {
	t.Helper()
	spec := dataset.LA()
	spec.NumRecords = 300
	ds, err := dataset.Generate(spec, geo.MustGrid(32, 32))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(ds, WithHeight(5), WithPostProcess(PostPlatt))
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// TestUnmarshalV1Artifact pins that pre-v2 .fidx files still load:
// point lookups and scores are unchanged, the query acceleration
// structures are recomputed to the exact structures a fresh build
// derives, and only GroupStats — whose per-region statistics a v1
// file never carried — degrades, with a distinct error.
func TestUnmarshalV1Artifact(t *testing.T) {
	idx := buildV1TestIndex(t)
	blob, err := marshalBinaryV1(idx)
	if err != nil {
		t.Fatal(err)
	}
	var back Index
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatalf("v1 artifact failed to load: %v", err)
	}

	// Locate parity over the whole grid.
	for i := 0; i < back.grid.NumCells(); i++ {
		c := back.grid.CellAt(i)
		r0, err0 := idx.LocateCell(c)
		r1, err1 := back.LocateCell(c)
		if err0 != nil || err1 != nil || r0 != r1 {
			t.Fatalf("cell %v: %d/%v vs %d/%v", c, r0, err0, r1, err1)
		}
	}

	// Recomputed acceleration structures match the built ones exactly.
	if !reflect.DeepEqual(back.regionRects, idx.regionRects) {
		t.Error("v1 load: region bounding rects diverge from a fresh build")
	}
	if !reflect.DeepEqual(back.regionCells, idx.regionCells) {
		t.Error("v1 load: region cell counts diverge from a fresh build")
	}
	if !reflect.DeepEqual(back.knnOrder, idx.knnOrder) {
		t.Error("v1 load: centroid kd layout diverges from a fresh build")
	}

	// Range and kNN queries work on the restored index.
	box := back.box
	got, err := back.RangeQuery(box)
	if err != nil {
		t.Fatal(err)
	}
	want, err := idx.RangeQuery(box)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("v1 load: RangeQuery diverges")
	}
	n0, err := back.NearestRegions(box.MinLat, box.MinLon, 3)
	if err != nil {
		t.Fatal(err)
	}
	n1, err := idx.NearestRegions(box.MinLat, box.MinLon, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(n0, n1) {
		t.Error("v1 load: NearestRegions diverges")
	}

	// GroupStats is the only degraded surface.
	if _, err := back.GroupStats(0, []int{0}); !errors.Is(err, ErrNoRegionStats) {
		t.Errorf("GroupStats on v1 index err = %v, want ErrNoRegionStats", err)
	}

	// Re-saving a v1-loaded index produces a valid v2 artifact that
	// still carries no stats (absence is encoded, not invented).
	reblob, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var again Index
	if err := again.UnmarshalBinary(reblob); err != nil {
		t.Fatalf("re-saved v1 index failed to load: %v", err)
	}
	if _, err := again.GroupStats(0, []int{0}); !errors.Is(err, ErrNoRegionStats) {
		t.Errorf("re-saved index GroupStats err = %v, want ErrNoRegionStats", err)
	}
}

// TestUnmarshalRejectsCorruptAccel pins the v2 acceleration
// validation: a kd layout that is not a permutation must fail decode.
func TestUnmarshalRejectsCorruptAccel(t *testing.T) {
	idx := buildV1TestIndex(t)
	good := idx.knnOrder[0]
	idx.knnOrder[0] = idx.knnOrder[1] // duplicate entry
	blob, err := idx.MarshalBinary()
	idx.knnOrder[0] = good
	if err != nil {
		t.Fatal(err)
	}
	var back Index
	if err := back.UnmarshalBinary(blob); !errors.Is(err, ErrIndexFormat) {
		t.Errorf("corrupt kd layout err = %v, want ErrIndexFormat", err)
	}
}
