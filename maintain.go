package fairindex

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"fairindex/internal/calib"
	"fairindex/internal/dataset"
)

// maintState carries the mutable maintenance side of an Index: the
// live per-region sufficient statistics (with appended records folded
// in) and the drift threshold. It hangs off the Index behind a
// pointer so Index values stay copyable, and publishes every fold as
// a fresh immutable snapshot behind an atomic pointer — queries read
// lock-free while AppendBatch serializes writers on mu.
type maintState struct {
	mu        sync.Mutex
	cur       atomic.Pointer[liveStats]
	threshold atomic.Uint64 // math.Float64bits of the drift threshold
}

// liveStats is one immutable maintenance snapshot. AppendBatch never
// mutates a published snapshot; it copies, folds and swaps.
type liveStats struct {
	// stats holds the live per-region sufficient statistics per task
	// slot; a nil slot marks an artifact that predates region stats
	// (v1) and cannot accept appends.
	stats [][]calib.GroupStats
	// ence is each task slot's ENCE over its live stats. At build
	// time it is bit-identical to the stored report value (both are
	// population-weighted folds of the same per-region statistics in
	// the same order), which is what makes |live − stored| a sound
	// drift measure across save/reload cycles.
	ence []float64
	// appended counts records folded since the Index was built or
	// loaded. It is runtime observability, not serialized: the folded
	// statistics themselves persist through MarshalBinary.
	appended int
}

// initMaint publishes the initial maintenance snapshot over the
// build- or load-time per-region statistics.
func (ix *Index) initMaint(threshold float64) {
	ls := &liveStats{
		stats: make([][]calib.GroupStats, len(ix.tasks)),
		ence:  make([]float64, len(ix.tasks)),
	}
	for i := range ix.tasks {
		it := &ix.tasks[i]
		if it.stats == nil {
			ls.ence[i] = it.report.ENCE
			continue
		}
		// Share the baseline slice; folds are copy-on-write.
		ls.stats[i] = it.stats
		ls.ence[i] = calib.ENCEFromStats(it.stats)
	}
	m := &maintState{}
	m.cur.Store(ls)
	m.threshold.Store(math.Float64bits(threshold))
	ix.maint = m
}

// live returns the current maintenance snapshot (nil only for Index
// values that never went through Build/UnmarshalBinary).
func (ix *Index) live() *liveStats {
	if ix.maint == nil {
		return nil
	}
	return ix.maint.cur.Load()
}

// statsFor returns the live per-region statistics for a task slot,
// falling back to the build-time snapshot when no maintenance state
// exists.
func (ix *Index) statsFor(slot int) []calib.GroupStats {
	if ls := ix.live(); ls != nil {
		return ls.stats[slot]
	}
	return ix.tasks[slot].stats
}

// liveENCE returns a task slot's ENCE over its live statistics.
func (ix *Index) liveENCE(slot int) float64 {
	if ls := ix.live(); ls != nil {
		return ls.ence[slot]
	}
	return ix.tasks[slot].report.ENCE
}

// driftThreshold reads the armed threshold (0 = monitoring only).
func (ix *Index) driftThreshold() float64 {
	if ix.maint == nil {
		return 0
	}
	return math.Float64frombits(ix.maint.threshold.Load())
}

// TaskDrift is one task's live calibration state after a fold.
type TaskDrift struct {
	Task  int
	ENCE  float64 // live ENCE over build-time + appended records
	Drift float64 // |ENCE − build-time ENCE|
}

// AppendResult summarizes one AppendBatch fold.
type AppendResult struct {
	Appended int         // records folded by this call
	Total    int         // records folded since the Index was built or loaded
	Tasks    []TaskDrift // live state per task, in Tasks() order
	Drift    float64     // maximum task drift
	// RebuildRecommended reports whether Drift crossed the armed
	// threshold (always false while the threshold is 0).
	RebuildRecommended bool
}

// AppendBatch folds a batch of new records into the index's live
// per-region statistics: each record is located, scored through the
// task models (and any post-processing calibrators — the same serving
// path Score uses) and added to its region's additive sufficient
// statistics. GroupStats, Report's ENCE and MarshalBinary all observe
// the fold immediately and exactly — the statistics are additive, so
// a fold equals a from-scratch recompute over the grown dataset with
// the same frozen models (see docs/STREAMING.md for the exactness
// boundary). The partition and the models themselves never change;
// the returned drift tells the caller when retraining is worth it.
//
// Records must carry a full feature vector and one 0/1 label per
// index task. On any invalid record the whole batch is rejected and
// the index is unchanged. AppendBatch is safe for concurrent use with
// all queries and with itself; concurrent appenders serialize.
// Indexes restored from pre-v2 artifacts have no statistics to fold
// into and return ErrNoRegionStats.
func (ix *Index) AppendBatch(recs []Record) (AppendResult, error) {
	if len(recs) == 0 {
		return AppendResult{}, fmt.Errorf("fairindex: append: empty batch")
	}
	if ix.maint == nil {
		return AppendResult{}, fmt.Errorf("fairindex: append: %w", ErrNoRegionStats)
	}
	for i := range ix.tasks {
		if ix.tasks[i].stats == nil {
			return AppendResult{}, fmt.Errorf("fairindex: append: %w", ErrNoRegionStats)
		}
	}

	// Validate, locate and score outside the lock: the models,
	// calibrators and partition are immutable, so the critical
	// section below is only the fold itself.
	n := len(recs)
	regions := make([]int, n)
	scores := make([][]float64, len(ix.tasks))
	for k := range scores {
		scores[k] = make([]float64, n)
	}
	for i := range recs {
		rec := &recs[i]
		if len(rec.X) != len(ix.featureNames) {
			return AppendResult{}, fmt.Errorf("fairindex: append record %d: %d features, index was built on %d",
				i, len(rec.X), len(ix.featureNames))
		}
		if len(rec.Labels) != len(ix.taskNames) {
			return AppendResult{}, fmt.Errorf("fairindex: append record %d: %d labels, index was built on %d tasks",
				i, len(rec.Labels), len(ix.taskNames))
		}
		for j, x := range rec.X {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return AppendResult{}, fmt.Errorf("fairindex: append record %d feature %d: %w: %v",
					i, j, dataset.ErrBadValue, x)
			}
		}
		for j, y := range rec.Labels {
			if y != 0 && y != 1 {
				return AppendResult{}, fmt.Errorf("fairindex: append record %d task %d: %w: %d",
					i, j, dataset.ErrBadLabel, y)
			}
		}
		region, err := ix.Locate(rec.Lat, rec.Lon)
		if err != nil {
			return AppendResult{}, fmt.Errorf("fairindex: append record %d: %w", i, err)
		}
		regions[i] = region
		for k := range ix.tasks {
			s, err := ix.scoreInRegion(&ix.tasks[k], rec.X, region)
			if err != nil {
				return AppendResult{}, fmt.Errorf("fairindex: append record %d: %w", i, err)
			}
			scores[k][i] = s
		}
	}

	m := ix.maint
	m.mu.Lock()
	old := m.cur.Load()
	next := &liveStats{
		stats:    make([][]calib.GroupStats, len(old.stats)),
		ence:     make([]float64, len(old.ence)),
		appended: old.appended + n,
	}
	for k := range old.stats {
		// Copy-on-write: in-flight readers keep their snapshot. The
		// fold accumulates in record order, matching calib.GroupBy
		// over the grown dataset bit for bit.
		st := append([]calib.GroupStats(nil), old.stats[k]...)
		col := ix.tasks[k].task
		for i := range recs {
			g := &st[regions[i]]
			g.Count++
			g.SumScore += scores[k][i]
			if recs[i].Labels[col] != 0 {
				g.SumLabel++
			}
		}
		next.stats[k] = st
		next.ence[k] = calib.ENCEFromStats(st)
	}
	m.cur.Store(next)
	m.mu.Unlock()
	return ix.appendResult(n, next), nil
}

// appendResult assembles the drift report for one published snapshot.
func (ix *Index) appendResult(n int, ls *liveStats) AppendResult {
	res := AppendResult{Appended: n, Total: ls.appended}
	for k := range ix.tasks {
		d := math.Abs(ls.ence[k] - ix.tasks[k].report.ENCE)
		res.Tasks = append(res.Tasks, TaskDrift{Task: ix.tasks[k].task, ENCE: ls.ence[k], Drift: d})
		if d > res.Drift {
			res.Drift = d
		}
	}
	thr := ix.driftThreshold()
	res.RebuildRecommended = thr > 0 && res.Drift >= thr
	return res
}

// Appended returns how many records AppendBatch has folded into this
// Index since it was built or loaded. It resets to 0 on reload; the
// folded statistics themselves persist through MarshalBinary.
func (ix *Index) Appended() int {
	if ls := ix.live(); ls != nil {
		return ls.appended
	}
	return 0
}

// Drift returns one task's calibration drift: the absolute distance
// between its live ENCE (build-time statistics plus every appended
// record) and the build-time ENCE stored in the artifact. 0 until
// appends arrive.
func (ix *Index) Drift(task int) (float64, error) {
	slot, err := ix.taskSlot(task)
	if err != nil {
		return 0, err
	}
	return math.Abs(ix.liveENCE(slot) - ix.tasks[slot].report.ENCE), nil
}

// MaxDrift returns the largest per-task drift (0 for an index without
// appends).
func (ix *Index) MaxDrift() float64 {
	var out float64
	for slot := range ix.tasks {
		if d := math.Abs(ix.liveENCE(slot) - ix.tasks[slot].report.ENCE); d > out {
			out = d
		}
	}
	return out
}

// DriftThreshold returns the armed drift threshold (0 = monitoring
// without a rebuild recommendation).
func (ix *Index) DriftThreshold() float64 { return ix.driftThreshold() }

// SetDriftThreshold arms (or, with 0, disarms) the rebuild
// recommendation. Safe for concurrent use with appends and queries.
func (ix *Index) SetDriftThreshold(t float64) error {
	if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("%w: drift threshold %v", ErrConfig, t)
	}
	if ix.maint != nil {
		ix.maint.threshold.Store(math.Float64bits(t))
	}
	return nil
}

// RebuildRecommended reports whether the live drift has crossed the
// armed threshold — the signal that enough appended records diverge
// from the build-time calibration to make retraining worthwhile.
func (ix *Index) RebuildRecommended() bool {
	thr := ix.driftThreshold()
	return thr > 0 && ix.MaxDrift() >= thr
}
