package fairindex

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"fairindex/internal/calib"
	"fairindex/internal/dataset"
)

// maintState carries the mutable maintenance side of an Index: the
// live per-region sufficient statistics (with appended records folded
// in) and the drift threshold. It hangs off the Index behind a
// pointer so Index values stay copyable, and publishes every fold as
// a fresh immutable snapshot behind an atomic pointer — queries read
// lock-free while AppendBatch serializes writers on mu.
type maintState struct {
	mu  sync.Mutex
	cur atomic.Pointer[liveStats]
	// thresholds holds the armed per-metric drift thresholds as an
	// immutable map behind an atomic pointer (writers replace the
	// whole map). The legacy single-threshold surface
	// (SetDriftThreshold / DriftThreshold) reads and writes the
	// calib.MetricENCE key.
	thresholds atomic.Pointer[map[string]float64]
	// Fingerprint cache (shard.go): the artifact's content hash,
	// computed lazily once per built/loaded Index.
	fpOnce sync.Once
	fp     uint64
	fpErr  error
}

// liveStats is one immutable maintenance snapshot. AppendBatch never
// mutates a published snapshot; it copies, folds and swaps.
type liveStats struct {
	// stats holds the live per-region sufficient statistics per task
	// slot; a nil slot marks an artifact that predates region stats
	// (v1) and cannot accept appends.
	stats [][]calib.SuffStats
	// ence is each task slot's ENCE over its live stats. At build
	// time it is bit-identical to the stored report value (both are
	// population-weighted folds of the same per-region statistics in
	// the same order), which is what makes |live − stored| a sound
	// drift measure across save/reload cycles.
	ence []float64
	// appended counts records folded since the Index was built or
	// loaded. It is runtime observability, not serialized: the folded
	// statistics themselves persist through MarshalBinary.
	appended int
}

// initMaint publishes the initial maintenance snapshot over the
// build- or load-time per-region statistics.
func (ix *Index) initMaint(threshold float64) {
	ls := &liveStats{
		stats: make([][]calib.SuffStats, len(ix.tasks)),
		ence:  make([]float64, len(ix.tasks)),
	}
	for i := range ix.tasks {
		it := &ix.tasks[i]
		if it.stats == nil {
			ls.ence[i] = it.report.ENCE
			continue
		}
		// Share the baseline slice; folds are copy-on-write.
		ls.stats[i] = it.stats
		ls.ence[i] = calib.ENCEFromStats(it.stats)
	}
	m := &maintState{}
	m.cur.Store(ls)
	thr := map[string]float64{}
	if threshold > 0 {
		thr[calib.MetricENCE] = threshold
	}
	m.thresholds.Store(&thr)
	ix.maint = m
}

// live returns the current maintenance snapshot (nil only for Index
// values that never went through Build/UnmarshalBinary).
func (ix *Index) live() *liveStats {
	if ix.maint == nil {
		return nil
	}
	return ix.maint.cur.Load()
}

// statsFor returns the live per-region statistics for a task slot,
// falling back to the build-time snapshot when no maintenance state
// exists.
func (ix *Index) statsFor(slot int) []calib.SuffStats {
	if ls := ix.live(); ls != nil {
		return ls.stats[slot]
	}
	return ix.tasks[slot].stats
}

// liveENCE returns a task slot's ENCE over its live statistics.
func (ix *Index) liveENCE(slot int) float64 {
	if ls := ix.live(); ls != nil {
		return ls.ence[slot]
	}
	return ix.tasks[slot].report.ENCE
}

// driftThresholds reads the armed per-metric threshold map (shared,
// treat as immutable; empty for an index with nothing armed).
func (ix *Index) driftThresholds() map[string]float64 {
	if ix.maint == nil {
		return nil
	}
	if p := ix.maint.thresholds.Load(); p != nil {
		return *p
	}
	return nil
}

// driftThreshold reads the armed legacy (ENCE) threshold (0 =
// monitoring only).
func (ix *Index) driftThreshold() float64 {
	return ix.driftThresholds()[calib.MetricENCE]
}

// TaskDrift is one task's live calibration state after a fold. The
// legacy ENCE/Drift fields always carry the ENCE view; Metrics and
// Drifts additionally report every monitored metric (ENCE plus any
// metric armed via SetDriftThresholds) by name.
type TaskDrift struct {
	Task  int
	ENCE  float64 // live ENCE over build-time + appended records
	Drift float64 // |ENCE − build-time ENCE|
	// Metrics holds the live value of each monitored metric over the
	// task's full region set.
	Metrics map[string]float64
	// Drifts holds |live − build-time| per monitored metric. A NaN
	// drift (a metric undefined on either side, e.g. cal_ratio with
	// no positives) never triggers a rebuild recommendation.
	Drifts map[string]float64
}

// AppendResult summarizes one AppendBatch fold.
type AppendResult struct {
	Appended int         // records folded by this call
	Total    int         // records folded since the Index was built or loaded
	Tasks    []TaskDrift // live state per task, in Tasks() order
	Drift    float64     // maximum task ENCE drift
	// Drifts holds the maximum per-task drift of each monitored
	// metric (always including "ence", which mirrors Drift).
	Drifts map[string]float64
	// RebuildRecommended reports whether any armed metric's drift
	// crossed its threshold (always false while nothing is armed).
	RebuildRecommended bool
}

// AppendBatch folds a batch of new records into the index's live
// per-region statistics: each record is located, scored through the
// task models (and any post-processing calibrators — the same serving
// path Score uses) and added to its region's additive sufficient
// statistics. GroupStats, Report's ENCE and MarshalBinary all observe
// the fold immediately and exactly — the statistics are additive, so
// a fold equals a from-scratch recompute over the grown dataset with
// the same frozen models (see docs/STREAMING.md for the exactness
// boundary). The partition and the models themselves never change;
// the returned drift tells the caller when retraining is worth it.
//
// Records must carry a full feature vector and one 0/1 label per
// index task. On any invalid record the whole batch is rejected and
// the index is unchanged. AppendBatch is safe for concurrent use with
// all queries and with itself; concurrent appenders serialize.
// Indexes restored from pre-v2 artifacts have no statistics to fold
// into and return ErrNoRegionStats.
func (ix *Index) AppendBatch(recs []Record) (AppendResult, error) {
	if len(recs) == 0 {
		return AppendResult{}, fmt.Errorf("fairindex: append: empty batch")
	}
	if ix.maint == nil {
		return AppendResult{}, fmt.Errorf("fairindex: append: %w", ErrNoRegionStats)
	}
	for i := range ix.tasks {
		if ix.tasks[i].stats == nil {
			return AppendResult{}, fmt.Errorf("fairindex: append: %w", ErrNoRegionStats)
		}
	}

	// Validate, locate and score outside the lock: the models,
	// calibrators and partition are immutable, so the critical
	// section below is only the fold itself.
	n := len(recs)
	regions := make([]int, n)
	scores := make([][]float64, len(ix.tasks))
	for k := range scores {
		scores[k] = make([]float64, n)
	}
	for i := range recs {
		rec := &recs[i]
		if len(rec.X) != len(ix.featureNames) {
			return AppendResult{}, fmt.Errorf("fairindex: append record %d: %d features, index was built on %d",
				i, len(rec.X), len(ix.featureNames))
		}
		if len(rec.Labels) != len(ix.taskNames) {
			return AppendResult{}, fmt.Errorf("fairindex: append record %d: %d labels, index was built on %d tasks",
				i, len(rec.Labels), len(ix.taskNames))
		}
		for j, x := range rec.X {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return AppendResult{}, fmt.Errorf("fairindex: append record %d feature %d: %w: %v",
					i, j, dataset.ErrBadValue, x)
			}
		}
		for j, y := range rec.Labels {
			if y != 0 && y != 1 {
				return AppendResult{}, fmt.Errorf("fairindex: append record %d task %d: %w: %d",
					i, j, dataset.ErrBadLabel, y)
			}
		}
		region, err := ix.Locate(rec.Lat, rec.Lon)
		if err != nil {
			return AppendResult{}, fmt.Errorf("fairindex: append record %d: %w", i, err)
		}
		regions[i] = region
		for k := range ix.tasks {
			s, err := ix.scoreInRegion(&ix.tasks[k], rec.X, region)
			if err != nil {
				return AppendResult{}, fmt.Errorf("fairindex: append record %d: %w", i, err)
			}
			scores[k][i] = s
		}
	}

	m := ix.maint
	m.mu.Lock()
	old := m.cur.Load()
	next := &liveStats{
		stats:    make([][]calib.SuffStats, len(old.stats)),
		ence:     make([]float64, len(old.ence)),
		appended: old.appended + n,
	}
	for k := range old.stats {
		// Copy-on-write: in-flight readers keep their snapshot. The
		// fold accumulates in record order, matching calib.GroupBy
		// over the grown dataset bit for bit.
		st := append([]calib.SuffStats(nil), old.stats[k]...)
		col := ix.tasks[k].task
		for i := range recs {
			g := &st[regions[i]]
			g.Count++
			g.SumScore += scores[k][i]
			if recs[i].Labels[col] != 0 {
				g.SumLabel++
			}
		}
		next.stats[k] = st
		next.ence[k] = calib.ENCEFromStats(st)
	}
	m.cur.Store(next)
	m.mu.Unlock()
	return ix.appendResult(n, next), nil
}

// DriftExceeds is the single boundary predicate of the drift control
// plane: it reports whether a measured drift (or a candidate-versus-
// serving regression) crosses an armed threshold (or promotion
// budget). The crossing is inclusive — a drift landing exactly on the
// threshold triggers — NaN (the metric-undefined sentinel, see
// docs/METRICS.md) never crosses, and non-positive thresholds are
// disarmed. AppendBatch's rebuild recommendation, RebuildRecommended,
// the registry's drift log line and the rebuild controller's
// promotion gate (internal/rebuild) all route through this predicate,
// so the exactly-on-threshold behavior cannot diverge across layers.
func DriftExceeds(drift, threshold float64) bool {
	return threshold > 0 && !math.IsNaN(drift) && drift >= threshold
}

// monitoredMetrics returns the metric names a drift report covers:
// ENCE (always) plus every armed threshold metric, sorted for
// deterministic report order.
func (ix *Index) monitoredMetrics() []string {
	thr := ix.driftThresholds()
	names := make([]string, 0, len(thr)+1)
	names = append(names, calib.MetricENCE)
	for name := range thr {
		if name != calib.MetricENCE {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// metricValues computes one metric's (live, baseline) pair for a task
// slot against one live snapshot. The ENCE pair reuses the
// incrementally maintained values, keeping legacy drift bit-exact;
// other metrics evaluate over the live and build-time statistics.
func (ix *Index) metricValues(name string, slot int, ls *liveStats) (live, base float64) {
	if name == calib.MetricENCE {
		if ls != nil {
			return ls.ence[slot], ix.tasks[slot].report.ENCE
		}
		return ix.liveENCE(slot), ix.tasks[slot].report.ENCE
	}
	m, ok := calib.MetricByName(name)
	if !ok {
		return math.NaN(), math.NaN()
	}
	stats := ix.tasks[slot].stats
	if stats == nil {
		return math.NaN(), math.NaN()
	}
	liveStats := stats
	if ls != nil {
		liveStats = ls.stats[slot]
	} else if cur := ix.statsFor(slot); cur != nil {
		liveStats = cur
	}
	return m.Compute(liveStats), m.Compute(stats)
}

// appendResult assembles the drift report for one published snapshot.
func (ix *Index) appendResult(n int, ls *liveStats) AppendResult {
	monitored := ix.monitoredMetrics()
	res := AppendResult{Appended: n, Total: ls.appended, Drifts: make(map[string]float64, len(monitored))}
	for k := range ix.tasks {
		td := TaskDrift{
			Task:    ix.tasks[k].task,
			ENCE:    ls.ence[k],
			Drift:   math.Abs(ls.ence[k] - ix.tasks[k].report.ENCE),
			Metrics: make(map[string]float64, len(monitored)),
			Drifts:  make(map[string]float64, len(monitored)),
		}
		for _, name := range monitored {
			live, base := ix.metricValues(name, k, ls)
			td.Metrics[name] = live
			td.Drifts[name] = math.Abs(live - base)
			// NaN (a metric undefined on either side) never displaces
			// the running max; any defined drift — including 0 — makes
			// the monitored metric show up in the report.
			if d := td.Drifts[name]; !math.IsNaN(d) {
				if cur, ok := res.Drifts[name]; !ok || d > cur {
					res.Drifts[name] = d
				}
			}
		}
		res.Tasks = append(res.Tasks, td)
		if td.Drift > res.Drift {
			res.Drift = td.Drift
		}
	}
	thr := ix.driftThresholds()
	for name, t := range thr {
		if d, ok := res.Drifts[name]; ok && DriftExceeds(d, t) {
			res.RebuildRecommended = true
		}
	}
	return res
}

// Appended returns how many records AppendBatch has folded into this
// Index since it was built or loaded. It resets to 0 on reload; the
// folded statistics themselves persist through MarshalBinary.
func (ix *Index) Appended() int {
	if ls := ix.live(); ls != nil {
		return ls.appended
	}
	return 0
}

// Drift returns one task's calibration drift: the absolute distance
// between its live ENCE (build-time statistics plus every appended
// record) and the build-time ENCE stored in the artifact. 0 until
// appends arrive.
func (ix *Index) Drift(task int) (float64, error) {
	slot, err := ix.taskSlot(task)
	if err != nil {
		return 0, err
	}
	return math.Abs(ix.liveENCE(slot) - ix.tasks[slot].report.ENCE), nil
}

// MaxDrift returns the largest per-task drift (0 for an index without
// appends).
func (ix *Index) MaxDrift() float64 {
	var out float64
	for slot := range ix.tasks {
		if d := math.Abs(ix.liveENCE(slot) - ix.tasks[slot].report.ENCE); d > out {
			out = d
		}
	}
	return out
}

// MetricDrift returns one task's drift under a named registered
// metric: |metric over live statistics − metric over build-time
// statistics|. For "ence" it equals Drift bit for bit. A NaN result
// means the metric is undefined on at least one side (e.g. cal_ratio
// with no positives); NaN drift never triggers a rebuild
// recommendation. Indexes restored from pre-v2 artifacts carry no
// statistics for non-ENCE metrics and fail with ErrNoRegionStats.
func (ix *Index) MetricDrift(task int, metric string) (float64, error) {
	slot, err := ix.taskSlot(task)
	if err != nil {
		return 0, err
	}
	if metric == calib.MetricENCE {
		return math.Abs(ix.liveENCE(slot) - ix.tasks[slot].report.ENCE), nil
	}
	if _, ok := calib.MetricByName(metric); !ok {
		return 0, fmt.Errorf("%w: unknown metric %q (registered: %v)", ErrQuery, metric, calib.MetricNames())
	}
	if ix.tasks[slot].stats == nil {
		return 0, ErrNoRegionStats
	}
	live, base := ix.metricValues(metric, slot, nil)
	return math.Abs(live - base), nil
}

// MaxMetricDrift returns the largest per-task drift under a named
// metric (NaN per-task drifts are skipped).
func (ix *Index) MaxMetricDrift(metric string) (float64, error) {
	var out float64
	for slot := range ix.tasks {
		d, err := ix.MetricDrift(ix.tasks[slot].task, metric)
		if err != nil {
			return 0, err
		}
		if !math.IsNaN(d) && d > out {
			out = d
		}
	}
	return out, nil
}

// DriftThreshold returns the armed ENCE drift threshold (0 =
// monitoring without a rebuild recommendation). Per-metric thresholds
// are read with DriftThresholds.
func (ix *Index) DriftThreshold() float64 { return ix.driftThreshold() }

// DriftThresholds returns a copy of the armed per-metric thresholds
// (empty when nothing is armed).
func (ix *Index) DriftThresholds() map[string]float64 {
	cur := ix.driftThresholds()
	out := make(map[string]float64, len(cur))
	for name, t := range cur {
		out[name] = t
	}
	return out
}

// SetDriftThreshold arms (or, with 0, disarms) the rebuild
// recommendation on ENCE drift, preserving any other armed metric
// thresholds. Safe for concurrent use with appends and queries.
func (ix *Index) SetDriftThreshold(t float64) error {
	if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("%w: drift threshold %v", ErrConfig, t)
	}
	return ix.setThreshold(calib.MetricENCE, t)
}

// SetMetricDriftThreshold arms (or, with 0, disarms) the rebuild
// recommendation on one metric's drift, preserving the rest of the
// armed set. The metric name must be registered; the value must be
// finite and non-negative. Safe for concurrent use with appends and
// queries.
func (ix *Index) SetMetricDriftThreshold(metric string, t float64) error {
	if _, ok := calib.MetricByName(metric); !ok {
		return fmt.Errorf("%w: unknown drift metric %q (registered: %v)", ErrConfig, metric, calib.MetricNames())
	}
	if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("%w: drift threshold %v for metric %q", ErrConfig, t, metric)
	}
	return ix.setThreshold(metric, t)
}

// SetDriftThresholds replaces the whole armed threshold set: each
// entry arms the rebuild recommendation on that metric's drift
// crossing the threshold. Metric names must be registered; values
// must be finite and non-negative, with 0 disarming the metric. An
// empty (or nil) map disarms everything. Safe for concurrent use with
// appends and queries.
func (ix *Index) SetDriftThresholds(thresholds map[string]float64) error {
	next := make(map[string]float64, len(thresholds))
	for name, t := range thresholds {
		if _, ok := calib.MetricByName(name); !ok {
			return fmt.Errorf("%w: unknown drift metric %q (registered: %v)", ErrConfig, name, calib.MetricNames())
		}
		if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
			return fmt.Errorf("%w: drift threshold %v for metric %q", ErrConfig, t, name)
		}
		if t > 0 {
			next[name] = t
		}
	}
	if ix.maint != nil {
		ix.maint.thresholds.Store(&next)
	}
	return nil
}

// setThreshold swaps one entry of the immutable threshold map.
func (ix *Index) setThreshold(metric string, t float64) error {
	if ix.maint == nil {
		return nil
	}
	ix.maint.mu.Lock()
	defer ix.maint.mu.Unlock()
	cur := ix.driftThresholds()
	next := make(map[string]float64, len(cur)+1)
	for name, v := range cur {
		next[name] = v
	}
	if t > 0 {
		next[metric] = t
	} else {
		delete(next, metric)
	}
	ix.maint.thresholds.Store(&next)
	return nil
}

// RebuildRecommended reports whether any armed metric's live drift
// has crossed its threshold — the signal that enough appended records
// diverge from the build-time calibration to make retraining
// worthwhile.
func (ix *Index) RebuildRecommended() bool {
	for name, thr := range ix.driftThresholds() {
		if thr <= 0 {
			continue
		}
		d, err := ix.MaxMetricDrift(name)
		if err == nil && DriftExceeds(d, thr) {
			return true
		}
	}
	return false
}
