// Multi-objective redistricting (§4.3): a city needs ONE set of
// neighborhood boundaries that is fair for several decision-making
// tasks at once — here, an education task (ACT) and an employment
// task. This example builds the Multi-Objective Fair KD-tree with
// equal task weights and compares it, per task, against a median
// KD-tree and against single-task Fair KD-trees.
//
// Run with:
//
//	go run ./examples/multiobjective
package main

import (
	"fmt"
	"log"

	fairindex "fairindex"
)

func main() {
	log.SetFlags(0)

	ds, err := fairindex.GenerateCity(fairindex.LA(), fairindex.MustGrid(64, 64))
	if err != nil {
		log.Fatal(err)
	}
	const height = 8
	fmt.Printf("%s: one partitioning, two objectives (%v), height %d\n\n",
		ds.Name, ds.TaskNames, height)

	// The multi-objective tree: α = 0.5 for each task (Eq. 12).
	multi, err := fairindex.Run(ds, fairindex.Config{
		Method: fairindex.MethodMultiObjectiveFairKD,
		Height: height,
		Alphas: []float64{0.5, 0.5},
		Seed:   11,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: the median KD-tree evaluated per task.
	medianENCE := make([]float64, ds.NumTasks())
	for task := 0; task < ds.NumTasks(); task++ {
		res, err := fairindex.Run(ds, fairindex.Config{
			Method: fairindex.MethodMedianKD,
			Height: height,
			Task:   task,
			Seed:   11,
		})
		if err != nil {
			log.Fatal(err)
		}
		medianENCE[task] = res.Tasks[0].ENCETrain
	}

	// Upper bound on single-task fairness: a dedicated Fair KD-tree
	// per task (two different maps — the thing cities cannot deploy).
	dedicatedENCE := make([]float64, ds.NumTasks())
	for task := 0; task < ds.NumTasks(); task++ {
		res, err := fairindex.Run(ds, fairindex.Config{
			Method: fairindex.MethodFairKD,
			Height: height,
			Task:   task,
			Seed:   11,
		})
		if err != nil {
			log.Fatal(err)
		}
		dedicatedENCE[task] = res.Tasks[0].ENCETrain
	}

	fmt.Printf("%-12s %-14s %-22s %s\n", "task", "median KD", "multi-objective (α=.5)", "dedicated fair KD")
	for t, name := range ds.TaskNames {
		tr := multi.Tasks[t]
		fmt.Printf("%-12s %-14.5f %-22.5f %.5f\n", name, medianENCE[t], tr.ENCETrain, dedicatedENCE[t])
	}
	fmt.Println("\nThe shared multi-objective map improves BOTH tasks over the median")
	fmt.Println("baseline, approaching what two separate dedicated maps would achieve.")
}
