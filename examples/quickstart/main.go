// Quickstart: build a fair spatial Index once, then query it many
// times — the paper's build-once / query-many serving flow. The Fair
// KD-tree index keeps per-neighborhood calibration error far below a
// standard median KD-tree at the same spatial granularity.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	fairindex "fairindex"
)

func main() {
	log.SetFlags(0)

	// 1. A city: 1153 schools with socio-economic features and an
	//    ACT-threshold label, spread over a 64×64 base grid.
	ds, err := fairindex.GenerateCity(fairindex.LA(), fairindex.MustGrid(64, 64))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %s, %d records, %d features, tasks %v\n",
		ds.Name, ds.Len(), ds.NumFeatures(), ds.TaskNames)

	// 2. Build the index two ways at the same granularity and compare
	//    the stored calibration reports.
	for _, method := range []fairindex.Method{
		fairindex.MethodMedianKD,
		fairindex.MethodFairKD,
	} {
		idx, err := fairindex.Build(ds,
			fairindex.WithMethod(method),
			fairindex.WithHeight(8), // up to 2^8 neighborhoods
			fairindex.WithSeed(11),
		)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := idx.Report(0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: %d neighborhoods\n", method, idx.NumRegions())
		fmt.Printf("  ENCE (neighborhood calibration error): %.5f\n", rep.ENCETrain)
		fmt.Printf("  test accuracy:                          %.3f\n", rep.Accuracy)
		fmt.Printf("  overall calibration ratio (train):      %.3f\n", rep.TrainCalRatio)

		if method != fairindex.MethodFairKD {
			continue
		}

		// 3. The serving surface: O(1) point→neighborhood lookup and
		//    calibrated scoring of one individual, no retraining.
		rec := ds.Records[0]
		region, err := idx.Locate(rec.Lat, rec.Lon)
		if err != nil {
			log.Fatal(err)
		}
		score, err := idx.Score(rec, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  record %s at (%.3f, %.3f) -> neighborhood %d, P(%s)=%.3f\n",
			rec.ID, rec.Lat, rec.Lon, region, ds.TaskNames[0], score)

		// 4. Persist and restore: the round-tripped index answers the
		//    exact same queries, so it can be built offline and shipped
		//    to a server.
		blob, err := idx.MarshalBinary()
		if err != nil {
			log.Fatal(err)
		}
		var restored fairindex.Index
		if err := restored.UnmarshalBinary(blob); err != nil {
			log.Fatal(err)
		}
		again, err := restored.Locate(rec.Lat, rec.Lon)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  serialized to %d bytes; restored index agrees: region %d\n",
			len(blob), again)
	}

	fmt.Println("\nThe Fair KD-tree keeps per-neighborhood calibration error far")
	fmt.Println("below the median KD-tree's at the same spatial granularity, at")
	fmt.Println("no material cost in accuracy — the paper's headline result.")
}
