// Quickstart: generate a synthetic city, build a Fair KD-tree
// partitioning, and compare its neighborhood calibration against the
// standard median KD-tree.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	fairindex "fairindex"
)

func main() {
	log.SetFlags(0)

	// 1. A city: 1153 schools with socio-economic features and an
	//    ACT-threshold label, spread over a 64×64 base grid.
	ds, err := fairindex.GenerateCity(fairindex.LA(), fairindex.MustGrid(64, 64))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %s, %d records, %d features, tasks %v\n",
		ds.Name, ds.Len(), ds.NumFeatures(), ds.TaskNames)

	// 2. Partition the city two ways at the same granularity.
	for _, method := range []fairindex.Method{
		fairindex.MethodMedianKD,
		fairindex.MethodFairKD,
	} {
		res, err := fairindex.Run(ds, fairindex.Config{
			Method: method,
			Height: 8, // up to 2^8 neighborhoods
			Seed:   11,
		})
		if err != nil {
			log.Fatal(err)
		}
		tr := res.Tasks[0]
		fmt.Printf("\n%s: %d neighborhoods\n", method, res.NumRegions)
		fmt.Printf("  ENCE (neighborhood calibration error): %.5f\n", tr.ENCETrain)
		fmt.Printf("  test accuracy:                          %.3f\n", tr.Accuracy)
		fmt.Printf("  overall calibration ratio (train):      %.3f\n", tr.TrainCalRatio)
	}

	fmt.Println("\nThe Fair KD-tree keeps per-neighborhood calibration error far")
	fmt.Println("below the median KD-tree's at the same spatial granularity, at")
	fmt.Println("no material cost in accuracy — the paper's headline result.")
}
