// Redistricting: build all three fair index variants over the same
// city, draw the resulting neighborhood maps, and show how the
// fairness/cost trade-off moves from Median → Fair → Iterative Fair
// KD-tree (the paper's §4 algorithm suite end to end).
//
// Run with:
//
//	go run ./examples/redistricting
package main

import (
	"fmt"
	"log"
	"strings"

	fairindex "fairindex"
)

func main() {
	log.SetFlags(0)

	ds, err := fairindex.GenerateCity(fairindex.Houston(), fairindex.MustGrid(64, 64))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("redistricting %s (%d schools) into up to 2^6 = 64 neighborhoods\n\n", ds.Name, ds.Len())

	type row struct {
		method fairindex.Method
		ence   float64
		acc    float64
		build  string
	}
	var rows []row
	for _, method := range []fairindex.Method{
		fairindex.MethodMedianKD,
		fairindex.MethodFairKD,
		fairindex.MethodIterativeFairKD,
	} {
		res, err := fairindex.Run(ds, fairindex.Config{Method: method, Height: 6, Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		tr := res.Tasks[0]
		rows = append(rows, row{method, tr.ENCETrain, tr.Accuracy, res.BuildTime.String()})

		// Draw the map: each glyph is one neighborhood. The fair trees
		// cut where miscalibration mass balances, not where population
		// halves, so their district shapes differ visibly.
		fmt.Printf("--- %s ---\n", method)
		fmt.Println(renderLeafMap(res))
	}

	fmt.Printf("%-26s %-10s %-10s %s\n", "method", "ENCE", "accuracy", "build time")
	for _, r := range rows {
		fmt.Printf("%-26s %-10.5f %-10.3f %s\n", r.method, r.ence, r.acc, r.build)
	}
}

// renderLeafMap draws a compact ASCII map of the partition by
// sampling the 64×64 grid down to 32×32 characters.
func renderLeafMap(res *fairindex.Result) string {
	const glyphs = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	grid := res.Partition.Grid()
	var b strings.Builder
	for r := 31; r >= 0; r-- {
		srcRow := r * grid.U / 32
		for c := 0; c < 32; c++ {
			srcCol := c * grid.V / 32
			region, err := res.Partition.RegionOfCell(fairindex.Cell{Row: srcRow, Col: srcCol})
			if err != nil {
				b.WriteByte('?')
				continue
			}
			b.WriteByte(glyphs[region%len(glyphs)])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
