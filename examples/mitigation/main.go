// Mitigation families compared (§3's taxonomy on one dataset):
//
//   - pre-processing:  Kamiran–Calders reweighing over a uniform grid
//   - pre-processing:  fair spatial indexing (this paper — the
//     partitioning itself is the mitigation)
//   - post-processing: per-neighborhood Platt / isotonic
//     recalibration on top of a median KD-tree
//
// The point the paper makes: post-processing "sacrifices the utility
// of output confidence scores", while fair indexing changes only the
// neighborhood boundaries and keeps the scores intact.
//
// Run with:
//
//	go run ./examples/mitigation
package main

import (
	"fmt"
	"log"

	fairindex "fairindex"
)

func main() {
	log.SetFlags(0)

	ds, err := fairindex.GenerateCity(fairindex.LA(), fairindex.MustGrid(64, 64))
	if err != nil {
		log.Fatal(err)
	}
	const height = 6

	type variant struct {
		label string
		cfg   fairindex.Config
	}
	variants := []variant{
		{"no mitigation (median KD-tree)", fairindex.Config{
			Method: fairindex.MethodMedianKD, Height: height}},
		{"pre: grid + reweighing", fairindex.Config{
			Method: fairindex.MethodGridReweight, Height: height}},
		{"pre: Fair KD-tree (this paper)", fairindex.Config{
			Method: fairindex.MethodFairKD, Height: height}},
		{"post: median KD + per-region Platt", fairindex.Config{
			Method: fairindex.MethodMedianKD, Height: height,
			PostProcess: fairindex.PostPlatt}},
		{"post: median KD + per-region isotonic", fairindex.Config{
			Method: fairindex.MethodMedianKD, Height: height,
			PostProcess: fairindex.PostIsotonic}},
	}

	fmt.Printf("%s — %d records, height %d\n\n", ds.Name, ds.Len(), height)
	fmt.Printf("%-40s %-10s %-10s %-10s\n",
		"mitigation", "ENCE", "accuracy", "testMiscal")
	var parityGap float64
	for _, v := range variants {
		v.cfg.Seed = 11
		res, err := fairindex.Run(ds, v.cfg)
		if err != nil {
			log.Fatal(err)
		}
		tr := res.Tasks[0]
		fmt.Printf("%-40s %-10.5f %-10.3f %-10.4f\n",
			v.label, tr.ENCETrain, tr.Accuracy, tr.TestMiscal)
		parityGap = tr.StatParityGap
	}
	fmt.Println("\nFair indexing reaches post-processing-level neighborhood calibration")
	fmt.Println("without rewriting any confidence score.")
	fmt.Printf("\nNote: the statistical parity gap across neighborhoods stays at %.2f for\n", parityGap)
	fmt.Println("every variant — spatially clustered base rates make parity notions")
	fmt.Println("unattainable across spatial groups, which is exactly why the paper")
	fmt.Println("builds on calibration instead (§2.2).")
}
