// Disparity audit (the paper's §5.2 motivation): train a classifier
// over zip-code-like neighborhoods with no mitigation and show that a
// model that looks calibrated citywide is severely miscalibrated in
// individual neighborhoods — the failure mode fair spatial indexing
// exists to fix.
//
// Run with:
//
//	go run ./examples/disparity
package main

import (
	"fmt"
	"log"
	"math"

	fairindex "fairindex"
)

func main() {
	log.SetFlags(0)

	for _, spec := range []fairindex.CitySpec{fairindex.LA(), fairindex.Houston()} {
		ds, err := fairindex.GenerateCity(spec, fairindex.MustGrid(64, 64))
		if err != nil {
			log.Fatal(err)
		}
		res, err := fairindex.Run(ds, fairindex.Config{
			Method:   fairindex.MethodZipCode, // fixed zip-code partition, no mitigation
			Encoding: fairindex.EncCentroid,   // location available only coarsely
			Seed:     11,
		})
		if err != nil {
			log.Fatal(err)
		}
		tr := res.Tasks[0]
		fmt.Printf("== %s ==\n", ds.Name)
		fmt.Printf("citywide calibration ratio: train %.3f, test %.3f (1.0 = perfect)\n",
			tr.TrainCalRatio, tr.TestCalRatio)
		fmt.Println("but the ten most populated neighborhoods tell another story:")
		for i, r := range tr.TopNeighborhoods {
			bar := ratioBar(r.Ratio)
			fmt.Printf("  N%-2d pop %-4d calibration %5s %s\n", i+1, r.Count, fmtRatio(r.Ratio), bar)
		}
		fmt.Println()
	}
	fmt.Println("Individuals in over-scored neighborhoods (ratio > 1) are granted")
	fmt.Println("unearned confidence; under-scored ones (ratio < 1) are penalized —")
	fmt.Println("systematically, by where they live.")
}

// fmtRatio renders a calibration ratio, "n/a" when undefined.
func fmtRatio(r float64) string {
	if math.IsNaN(r) {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", r)
}

// ratioBar draws a crude gauge centered at the ideal ratio 1.0.
func ratioBar(r float64) string {
	if math.IsNaN(r) {
		return ""
	}
	const scale = 10 // characters per unit of ratio
	n := int(math.Round(r * scale))
	if n > 40 {
		n = 40
	}
	bar := make([]byte, n+1)
	for i := range bar {
		bar[i] = '-'
	}
	if n >= scale {
		bar[scale] = '|' // the ideal-calibration mark
	}
	return string(bar)
}
