package fairindex

import (
	"bytes"
	"testing"

	"fairindex/internal/dataset"
	"fairindex/internal/geo"
)

// streamTestCity renders a small city and its canonical CSV bytes.
func streamTestCity(t *testing.T, n int) (*Dataset, []byte) {
	t.Helper()
	spec := dataset.LA()
	spec.NumRecords = n
	ds, err := dataset.Generate(spec, geo.MustGrid(20, 20))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dataset.WriteCSV(ds, &buf); err != nil {
		t.Fatal(err)
	}
	return ds, buf.Bytes()
}

// marshalZeroTimings serializes an index with its wall-clock fields
// cleared, the same normalization the build-parity suite uses.
func marshalZeroTimings(t *testing.T, ix *Index) []byte {
	t.Helper()
	ix.buildTime, ix.trainTime = 0, 0
	blob, err := ix.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestBuildStreamParity is the streaming subsystem's acceptance gate:
// for every partition method and several heights, an index built from
// a chunked CSV stream must serialize to the exact bytes of an index
// built from the materialized dataset. The odd chunk size forces
// batch boundaries through the middle of the file.
func TestBuildStreamParity(t *testing.T) {
	ds, blob := streamTestCity(t, 420)
	methods := []Method{
		MethodMedianKD, MethodFairKD, MethodIterativeFairKD,
		MethodMultiObjectiveFairKD, MethodGridReweight, MethodZipCode,
		MethodFairQuadtree,
	}
	for _, m := range methods {
		for _, height := range []int{3, 6} {
			cfg := Config{Method: m, Height: height, Seed: 11, TrainWorkers: 3}
			mat, err := Build(ds, WithConfig(cfg))
			if err != nil {
				t.Fatalf("%v h=%d: Build: %v", m, height, err)
			}
			src, err := NewCSVSource(bytes.NewReader(blob), ds.Name, ds.Grid, ds.Box)
			if err != nil {
				t.Fatal(err)
			}
			str, err := BuildStream(src, WithConfig(cfg), WithStreaming(37))
			if err != nil {
				t.Fatalf("%v h=%d: BuildStream: %v", m, height, err)
			}
			matBytes := marshalZeroTimings(t, mat)
			strBytes := marshalZeroTimings(t, str)
			if !bytes.Equal(matBytes, strBytes) {
				at := 0
				for at < len(matBytes) && at < len(strBytes) && matBytes[at] == strBytes[at] {
					at++
				}
				t.Fatalf("%v h=%d: streamed .fidx (%d bytes) diverges from materialized (%d bytes) at offset %d",
					m, height, len(strBytes), len(matBytes), at)
			}
		}
	}
}

// TestBuildStreamFuncSourceParity extends byte parity to generator
// sources: records that never exist outside a batch still produce the
// identical artifact.
func TestBuildStreamFuncSourceParity(t *testing.T) {
	ds, _ := streamTestCity(t, 350)
	schema := StreamSchema{Name: ds.Name, Grid: ds.Grid, Box: ds.Box,
		FeatureNames: ds.FeatureNames, TaskNames: ds.TaskNames}
	src, err := NewFuncSource(schema, len(ds.Records), func(i int, rec *Record) error {
		r := &ds.Records[i]
		rec.ID, rec.Lat, rec.Lon = r.ID, r.Lat, r.Lon
		copy(rec.X, r.X)
		copy(rec.Labels, r.Labels)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Method: MethodFairKD, Height: 5, Seed: 7}
	mat, err := Build(ds, WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	str, err := BuildStream(src, WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalZeroTimings(t, mat), marshalZeroTimings(t, str)) {
		t.Fatal("generator-fed stream build diverges from materialized build")
	}
}

func TestBuildStreamOptionValidation(t *testing.T) {
	ds, _ := streamTestCity(t, 60)
	src := NewDatasetSource(ds)
	if _, err := BuildStream(src, WithStreaming(-1)); err == nil {
		t.Error("negative chunk accepted")
	}
	if _, err := BuildStream(src, WithDriftThreshold(-0.5)); err == nil {
		t.Error("negative drift threshold accepted")
	}
	if _, err := BuildStream(nil); err == nil {
		t.Error("nil source accepted")
	}
}

// TestBuildStreamArmsDriftThreshold pins the option plumbing: a
// threshold given at build time is armed on the returned index.
func TestBuildStreamArmsDriftThreshold(t *testing.T) {
	ds, _ := streamTestCity(t, 80)
	idx, err := BuildStream(NewDatasetSource(ds), WithConfig(Config{Method: MethodFairKD, Height: 3}),
		WithDriftThreshold(0.25))
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.DriftThreshold(); got != 0.25 {
		t.Errorf("DriftThreshold = %v, want 0.25", got)
	}
	if idx.RebuildRecommended() {
		t.Error("fresh index already recommends a rebuild")
	}
}
