package fairindex

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// buildGoldenIndex builds the canonical fixture artifact: paper-style
// LA synthetic data, Fair KD-tree height 3 on an 8×8 grid with Platt
// post-processing, seed 11. Small enough to commit (a few KB), rich
// enough to exercise every codec section (calibrator reference table,
// acceleration structures, per-region stats).
func buildGoldenIndex(tb testing.TB) *Index {
	tb.Helper()
	return buildFuzzSeedIndex(tb) // same canonical configuration
}

// writeFuzzSeed writes one seed in the Go fuzzing corpus-file format.
func writeFuzzSeed(tb testing.TB, dir, name string, data []byte) {
	tb.Helper()
	body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		tb.Fatal(err)
	}
}

// TestRegenTestdata rewrites the committed golden .fidx fixtures and
// the FuzzUnmarshalBinary seed corpus from the canonical build. It
// only runs when FAIRINDEX_REGEN=1:
//
//	FAIRINDEX_REGEN=1 go test -run TestRegenTestdata .
//
// After regenerating, update the pinned spot-check constants in
// golden_test.go from this test's output and commit both.
func TestRegenTestdata(t *testing.T) {
	if os.Getenv("FAIRINDEX_REGEN") == "" {
		t.Skip("set FAIRINDEX_REGEN=1 to rewrite testdata fixtures")
	}
	idx := buildGoldenIndex(t)
	v2, err := idx.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	v1, err := marshalBinaryV1(idx)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join("testdata", "golden_v2.fidx"), v2, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join("testdata", "golden_v1.fidx"), v1, 0o644); err != nil {
		t.Fatal(err)
	}

	corpusDir := filepath.Join("testdata", "fuzz", "FuzzUnmarshalBinary")
	if err := os.MkdirAll(corpusDir, 0o755); err != nil {
		t.Fatal(err)
	}
	writeFuzzSeed(t, corpusDir, "seed_v2", v2)
	writeFuzzSeed(t, corpusDir, "seed_v1", v1)
	trunc := append([]byte(nil), v2[:len(v2)/2]...)
	writeFuzzSeed(t, corpusDir, "seed_truncated", trunc)
	mut := append([]byte(nil), v2...)
	mut[len(mut)/3] ^= 0xff
	writeFuzzSeed(t, corpusDir, "seed_bitflip", mut)
	writeFuzzSeed(t, corpusDir, "seed_bad_magic", []byte("XDIF\x02 not an index"))
	writeFuzzSeed(t, corpusDir, "seed_bad_version", []byte("FIDX\x7f"))

	// Print the pinned values golden_test.go asserts, ready to paste.
	t.Logf("golden_v2.fidx: %d bytes, golden_v1.fidx: %d bytes", len(v2), len(v1))
	t.Logf("goldenNumRegions = %d", idx.NumRegions())
	for _, p := range goldenProbes {
		region, err := idx.Locate(p.lat, p.lon)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("probe (%v, %v) -> region %d", p.lat, p.lon, region)
	}
	ov, err := idx.RangeQuery(goldenWindow)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("goldenWindow overlaps = %d", len(ov))
	for _, o := range ov {
		t.Logf("  region %d cells %d fraction %v", o.Region, o.Cells, o.Fraction)
	}
	ws, err := idx.GroupStats(0, goldenWindowRegions(ov))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("goldenENCEBits = %#x (ENCE %v)", math.Float64bits(ws.ENCE), ws.ENCE)
	t.Logf("goldenCount = %d", ws.Count)
	fmt.Println("regenerated testdata; update golden_test.go pins if values changed")
}
